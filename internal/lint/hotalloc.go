package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotAlloc enforces the allocation-free discipline of the sweep kernels:
// a function whose doc comment contains a //phast:hotpath line must not
// allocate on any path, because the sweeps are memory-bandwidth-bound
// (§IV, §VIII-B) and a single allocation per vertex or per arc destroys
// the sequential-read argument.
//
// The discipline is interprocedural: an unannotated helper reachable
// from an annotated kernel over the static call graph (Pass.Facts) is
// checked under the same rules, with the witness call path in the
// diagnostic — so extracting one line of a kernel into a helper can no
// longer move its allocation out of the analyzer's sight. Dynamic
// dispatch (interface methods, function-typed fields and parameters) is
// not traversed; see the callgraph.go limitations.
//
// Flagged inside annotated or hot-reachable functions:
//
//   - make and new calls,
//   - composite literals (slice/map/struct literals allocate or copy),
//   - append calls that are not the amortized self-append idiom
//     `x = append(x, ...)` / `x = append(x[:0], ...)` on a reused buffer,
//   - go statements — a goroutine launch allocates a stack and heap-boxes
//     the closure's captures; a launch nested in a loop (the retired
//     per-level fork-join idiom, one spawn wave per level) gets its own
//     diagnostic pointing at the persistent worker pool,
//   - closures that escape (any use other than binding to a local
//     variable or passing as a direct call argument) — escaping closures
//     heap-allocate their captures. The call-argument allowance covers
//     the simulator's kernel-launch idiom, which invokes the closure
//     synchronously,
//   - interface boxing: passing a non-interface value where an
//     interface is expected, including variadic ...any,
//   - string<->[]byte/[]rune conversions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocations inside //phast:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			if hasMarker(decl.Doc, HotPathMarker) {
				checkHotBody(pass, decl.Name.Name+" is //phast:hotpath", body)
				return
			}
			if pass.Facts == nil {
				return // intraprocedural fallback (facts-free test runs)
			}
			obj, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				return
			}
			if chain := pass.Facts.HotChain(obj); chain != nil {
				checkHotBody(pass, fmt.Sprintf("%s is on a //phast:hotpath call path (%s)", decl.Name.Name, chainString(chain)), body)
			}
		})
	}
}

// hotAllowances is what the pre-walk of an annotated body sanctions:
// non-escaping closures and amortized self-appends.
type hotAllowances struct {
	lits       map[*ast.FuncLit]bool
	selfAppend map[*ast.CallExpr]bool
}

func checkHotBody(pass *Pass, label string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	pkgScope := pass.Pkg.Types.Scope()
	allow := hotAllowances{
		lits:       make(map[*ast.FuncLit]bool),
		selfAppend: make(map[*ast.CallExpr]bool),
	}
	localIdent := func(id *ast.Ident) bool {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		return obj != nil && obj.Parent() != pkgScope
	}

	// Pre-walk: mark go statements nested inside a loop, the signature
	// of the retired per-level fork-join sweep (spawn a wave of
	// goroutines per level, barrier, repeat). Those get a diagnostic
	// that names the replacement, not just the allocation.
	goInLoop := make(map[*ast.GoStmt]bool)
	markGos := func(loopBody ast.Node) {
		ast.Inspect(loopBody, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goInLoop[g] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			markGos(n.Body)
		case *ast.RangeStmt:
			markGos(n.Body)
		}
		return true
	})

	// Pre-walk: collect the sanctioned patterns.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				switch r := rhs.(type) {
				case *ast.FuncLit:
					// Closure bound to a local name: stays on the stack
					// as long as that name does not itself escape.
					// Assigning to a package variable escapes.
					if id, ok := n.Lhs[i].(*ast.Ident); ok && localIdent(id) {
						allow.lits[r] = true
					}
				case *ast.CallExpr:
					if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(info, id) && len(r.Args) > 0 {
						if exprString(n.Lhs[i]) == exprString(sliceBase(r.Args[0])) {
							allow.selfAppend[r] = true
						}
					}
				}
			}
		case *ast.GoStmt:
			// Never sanction goroutine closures (reported separately).
		case *ast.CallExpr:
			for _, a := range n.Args {
				if lit, ok := a.(*ast.FuncLit); ok {
					allow.lits[lit] = true
				}
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				allow.lits[lit] = true // immediately invoked
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if goInLoop[n] {
				pass.Reportf(n.Pos(), "%s but launches a goroutine per loop iteration (the per-level fork-join idiom); park persistent workers outside the kernel and hand them chunks instead", label)
			} else {
				pass.Reportf(n.Pos(), "%s but launches a goroutine; the closure and goroutine allocate — hoist the launch out of the kernel", label)
			}
			// Do not additionally report the go closure itself.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				allow.lits[lit] = true
			}

		case *ast.FuncLit:
			if !allow.lits[n] {
				pass.Reportf(n.Pos(), "%s but builds an escaping closure; its captures are heap-allocated", label)
			}

		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "%s but builds a composite literal; preallocate it outside the kernel", label)
			return false // don't re-report nested literals of one value

		case *ast.CallExpr:
			checkHotCall(pass, info, label, n, allow)
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, label string, call *ast.CallExpr, allow hotAllowances) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(info, id) {
		switch id.Name {
		case "make":
			pass.Reportf(call.Pos(), "%s but calls make; preallocate the buffer outside the kernel", label)
		case "new":
			pass.Reportf(call.Pos(), "%s but calls new; preallocate outside the kernel", label)
		case "append":
			if !allow.selfAppend[call] {
				pass.Reportf(call.Pos(), "%s but appends into a fresh slice; only the amortized self-append idiom x = append(x, ...) is allocation-free after warm-up", label)
			}
		}
		return
	}

	// Conversions: T(x) where the callee is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src, dst := info.Types[call.Args[0]].Type, tv.Type
		if src != nil {
			if isStringByteConv(src, dst) {
				pass.Reportf(call.Pos(), "%s but converts between string and byte/rune slice, which copies", label)
			}
			if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
				pass.Reportf(call.Pos(), "%s but boxes a value into an interface", label)
			}
		}
		return
	}

	// Interface boxing through call arguments.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// f(slice...) forwards an existing slice; nothing boxes.
	if call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type.Underlying()) || at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "%s but boxes a %s into an interface parameter of %s", label, at.Type.String(), exprString(call.Fun))
	}
}

// isBuiltin reports whether the identifier resolves to a universe-scope
// builtin (and not a shadowing local).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isStringByteConv reports a conversion between string and []byte/[]rune
// in either direction.
func isStringByteConv(src, dst types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(src) && isByteRuneSlice(dst)) || (isByteRuneSlice(src) && isStr(dst))
}
