package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold guards the locking conventions of the serving layer: a
// sync.Mutex/RWMutex held across a blocking channel operation or a
// WaitGroup.Wait couples the critical section to another goroutine's
// progress — the classic shape of the drain deadlock (Close holds the
// write lock while a blocked sender holds the read side). Flagged while
// a lock is held on the linear path:
//
//   - channel sends and receives (including range over a channel),
//   - select statements with no default clause (every arm blocks),
//   - sync.WaitGroup.Wait calls (sync.Cond.Wait is exempt — holding
//     the lock is its contract).
//
// A select with a default clause is a non-blocking attempt and passes.
// Independently, a TryLock/TryRLock whose result is discarded is
// flagged: ignoring the bool means the code proceeds without knowing
// whether it holds the lock.
//
// The analysis is linear and intraprocedural, like rawalias: a lock is
// "held" from its Lock/RLock call until an Unlock/RUnlock on the same
// receiver expression later in the source; a deferred unlock never
// releases (the lock is held to the end of the function). Goroutine
// bodies and deferred closures are skipped — they do not run under the
// spawning statement's lock.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "flags mutexes held across channel operations or WaitGroup.Wait, and ignored TryLock results",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockHold(pass, body)
		})
	}
}

// lockEvent is one ordered fact on the function's linear path.
type lockEvent struct {
	pos  token.Pos
	kind int    // evAcquire, evRelease, evHazard
	recv string // lock receiver (acquire/release)
	what string // hazard description
}

const (
	evAcquire = iota
	evRelease
	evHazard
)

func checkLockHold(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var events []lockEvent

	// selectComms marks the comm statements of select clauses so the
	// generic send/receive cases do not double-report what the
	// select-level judgment already covered.
	selectComms := make(map[ast.Node]bool)

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return // runs on another goroutine, not under this lock

		case *ast.DeferStmt:
			// A deferred unlock means the lock is held to the end of the
			// function: record no release. Other deferred work runs at
			// exit; do not treat its channel operations as on-path.
			return

		case *ast.SelectStmt:
			hasDefault := false
			blockingComms := 0
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					selectComms[cc.Comm] = true
					blockingComms++
				}
			}
			if !hasDefault && blockingComms > 0 {
				events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "a select with no default clause (every arm blocks)"})
			}
			// Clause bodies still run under the lock; walk them.
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				for _, s := range cc.Body {
					walk(s, inDefer)
				}
				// Receives nested inside the comm's own expressions are
				// covered by the select judgment; skip them.
			}
			return

		case *ast.SendStmt:
			if !selectComms[ast.Node(n)] {
				events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "a channel send"})
			}

		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "a channel receive"})
			}

		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					events = append(events, lockEvent{pos: n.X.Pos(), kind: evHazard, what: "a range over a channel"})
				}
			}

		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if recv, name, ok := mutexMethod(info, call); ok && (name == "TryLock" || name == "TryRLock") {
					pass.Reportf(call.Pos(), "%s.%s result is discarded; the lock may not be held — branch on the returned bool", recv, name)
				}
			}

		case *ast.AssignStmt:
			blankOnly := true
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					blankOnly = false
				}
			}
			if blankOnly && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if recv, name, ok := mutexMethod(info, call); ok && (name == "TryLock" || name == "TryRLock") {
						pass.Reportf(call.Pos(), "%s.%s result is discarded; the lock may not be held — branch on the returned bool", recv, name)
					}
				}
			}

		case *ast.CallExpr:
			if recv, name, ok := mutexMethod(info, n); ok {
				switch name {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), kind: evAcquire, recv: recv})
				case "Unlock", "RUnlock":
					if !inDefer {
						events = append(events, lockEvent{pos: n.Pos(), kind: evRelease, recv: recv})
					}
				}
			}
			if recv, ok := waitGroupWait(info, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: evHazard, what: "WaitGroup " + recv + ".Wait()"})
			}
		}
		// Default recursion.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, inDefer)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, false)
	}

	// Linear resolution: scan events in source order, tracking held
	// locks; a hazard while any lock is held is a finding.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	held := make(map[string]token.Pos)
	var order []string // deterministic "which lock" for the message
	for _, e := range events {
		switch e.kind {
		case evAcquire:
			if _, ok := held[e.recv]; !ok {
				order = append(order, e.recv)
			}
			held[e.recv] = e.pos
		case evRelease:
			delete(held, e.recv)
			for i, r := range order {
				if r == e.recv {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		case evHazard:
			if len(order) > 0 {
				lock := order[len(order)-1]
				at := pass.Fset.Position(held[lock])
				pass.Reportf(e.pos, "%s is held (since line %d) across %s; a blocked operation here stalls every other user of the lock — release first, or make the operation non-blocking", lock, at.Line, e.what)
			}
		}
	}
}

// mutexMethod reports a method call on a sync.Mutex or sync.RWMutex
// receiver: the receiver's printed form and the method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// waitGroupWait reports a sync.WaitGroup.Wait() call (sync.Cond.Wait is
// deliberately not matched: holding its locker is Cond's contract).
func waitGroupWait(info *types.Info, callExpr *ast.CallExpr) (string, bool) {
	sel, ok := callExpr.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", false
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return exprString(sel.X), true
}
