package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotAlias flags writes through slices returned by functions
// annotated //phast:readonly — the accessors that hand out views of a
// PROT_READ snapshot mapping (internal/snapshot) or of arrays many
// engines share by aliasing (graph stream accessors). A write through
// such a view is at best silent cross-engine corruption and at worst a
// SIGBUS on the mapped pages; mutation requires an explicit copy. The
// analyzer is module-scoped: annotations are collected across every
// package of the run, so a write in internal/core through an accessor
// declared in internal/graph is still caught.
//
// Flagged forms, on the call result directly or on any variable bound
// to it (subslices included): element stores (x[i] = v, x[i] += v,
// x[i]++), copy with the view as destination, and append to the view
// (append writes into the mapped backing array whenever spare capacity
// exists).
var SnapshotAlias = &Analyzer{
	Name:   "snapshotalias",
	Doc:    "flags writes through slices returned by //phast:readonly accessors",
	Module: true,
	Run:    runSnapshotAlias,
}

func runSnapshotAlias(pass *Pass) {
	// Pass 1: collect every function object carrying the marker.
	readonly := make(map[types.Object]bool)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			funcBodies(f, func(decl *ast.FuncDecl, _ *ast.BlockStmt) {
				if hasMarker(decl.Doc, ReadonlyMarker) {
					if obj := pkg.Info.Defs[decl.Name]; obj != nil {
						readonly[obj] = true
					}
				}
			})
		}
	}
	if len(readonly) == 0 {
		return
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			funcBodies(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
				analyzeSnapshotAlias(pass, pkg, readonly, body)
			})
		}
	}
}

// roBinding is one assignment to a variable: source records the
// readonly accessor the value came from ("" when the assignment made
// the variable ordinary again).
type roBinding struct {
	pos    token.Pos
	source string
}

func analyzeSnapshotAlias(pass *Pass, pkg *Package, readonly map[types.Object]bool, body *ast.BlockStmt) {
	info := pkg.Info

	// roCall reports whether the expression is (a subslice of) a call
	// to a readonly accessor, returning the accessor's printed form.
	roCall := func(e ast.Expr) (string, bool) {
		call, ok := sliceBase(e).(*ast.CallExpr)
		if !ok {
			return "", false
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return "", false
		}
		if obj := info.Uses[id]; obj != nil && readonly[obj] {
			return exprString(call.Fun), true
		}
		return "", false
	}

	bindings := make(map[types.Object][]roBinding)
	objOf := func(e ast.Expr) types.Object {
		if id, ok := sliceBase(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				return obj
			}
			return info.Defs[id]
		}
		return nil
	}

	// Collect bindings in source order first (the AST walk below visits
	// statements in order, and bindings precede the uses they govern).
	latest := func(obj types.Object, pos token.Pos) string {
		src := ""
		var at token.Pos
		for _, b := range bindings[obj] {
			if b.pos <= pos && b.pos >= at {
				at, src = b.pos, b.source
			}
		}
		return src
	}
	// roExpr resolves an arbitrary expression to the readonly accessor
	// it aliases, either directly or through a tracked variable.
	roExpr := func(e ast.Expr, pos token.Pos) (string, bool) {
		if src, ok := roCall(e); ok {
			return src, true
		}
		if obj := objOf(e); obj != nil {
			if src := latest(obj, pos); src != "" {
				return src, true
			}
		}
		return "", false
	}

	report := func(pos token.Pos, src, how string) {
		pass.Reportf(pos, "%s a read-only view from %s; the slice aliases shared (possibly PROT_READ-mapped) snapshot memory — copy it before mutating", how, src)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Track bindings: x := ro(), x = y (propagate), x = other
			// (clear). Then check LHS writes through views.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					src, isRO := roExpr(n.Rhs[i], n.Rhs[i].Pos())
					if !isRO {
						src = ""
					}
					bindings[obj] = append(bindings[obj], roBinding{pos: n.Pos(), source: src})
				}
			}
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if src, ok := roExpr(idx.X, idx.Pos()); ok {
						report(idx.Pos(), src, "element store through")
					}
				}
			}

		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok {
				if src, ok := roExpr(idx.X, idx.Pos()); ok {
					report(idx.Pos(), src, "element store through")
				}
			}

		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case id.Name == "copy" && len(n.Args) == 2:
				if src, ok := roExpr(n.Args[0], n.Args[0].Pos()); ok {
					report(n.Args[0].Pos(), src, "copy into")
				}
			case id.Name == "append" && len(n.Args) > 0:
				if src, ok := roExpr(n.Args[0], n.Args[0].Pos()); ok {
					report(n.Args[0].Pos(), src, "append to")
				}
			}
		}
		return true
	})
}
