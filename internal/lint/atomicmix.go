package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags the mixed-access hazard class the lock-free scheduler
// and server live on: a struct field that one site accesses through
// sync/atomic (atomic.LoadUint32(&s.f), atomic.StoreUint32(&s.done[c], 1))
// and another site reads or writes plainly. Mixed access has no
// memory-ordering story — the plain access races every atomic one, and
// the race detector only catches the interleavings a test happens to
// hit. This is exactly the done[]/frontier convention of
// internal/sched: every access to a word that is ever touched
// atomically must itself be atomic (or the field moves to a typed
// atomic.* wrapper, which makes the discipline structural).
//
// The analyzer is module-scoped: it builds one access table over every
// loaded package, so an exported field accessed atomically in its home
// package and plainly by an importer is still caught.
//
// Two granularities are tracked per field:
//
//   - word: the field itself is the atomic datum (&s.f passed to a
//     sync/atomic function). Every other read, write, or address-take
//     of the field is flagged.
//   - element: the field is a slice whose elements are the atomic data
//     (&s.f[i] passed to a sync/atomic function). Plain element
//     accesses — indexing, range, clear/copy/append, handing the slice
//     to another function — are flagged; header operations (len, cap,
//     re-slicing, assigning a fresh make) touch only the slice header
//     and pass.
//
// Fields of the typed sync/atomic wrappers (atomic.Uint32,
// atomic.Pointer[T], ...) are exempt: their only access path is the
// method set, so mixing is impossible by construction — which is why
// they are the recommended fix.
var AtomicMix = &Analyzer{
	Name:   "atomicmix",
	Doc:    "flags struct fields accessed both through sync/atomic and by plain loads/stores",
	Module: true,
	Run:    runAtomicMix,
}

// atomicFieldUse is one atomic access site of a field.
type atomicFieldUse struct {
	pos  token.Position
	elem bool // &f[i] (element) rather than &f (word)
}

func runAtomicMix(pass *Pass) {
	// Pass 1: find every field whose word or elements are accessed
	// through a sync/atomic function, and remember the selector nodes
	// consumed by those calls so pass 2 does not count them as plain.
	atomicUses := make(map[*types.Var][]atomicFieldUse)
	consumed := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isSyncAtomicCall(info, call) {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				switch target := ast.Unparen(addr.X).(type) {
				case *ast.SelectorExpr: // atomic.StoreUint64(&s.f, v)
					if fv := fieldVar(info, target); fv != nil {
						atomicUses[fv] = append(atomicUses[fv], atomicFieldUse{pos: pass.Fset.Position(call.Pos())})
						consumed[target] = true
					}
				case *ast.IndexExpr: // atomic.StoreUint32(&s.f[i], v)
					if sel, ok := ast.Unparen(target.X).(*ast.SelectorExpr); ok {
						if fv := fieldVar(info, sel); fv != nil {
							atomicUses[fv] = append(atomicUses[fv], atomicFieldUse{pos: pass.Fset.Position(call.Pos()), elem: true})
							consumed[sel] = true
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicUses) == 0 {
		return
	}

	// Pass 2: every other use of those fields. Context decides whether a
	// selector is a plain data access (flag) or a header/neutral use.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			checkPlainFieldUses(pass, info, f, atomicUses, consumed)
		}
	}
}

// isSyncAtomicCall reports whether the call invokes a package-level
// function of sync/atomic (LoadUint32, StoreUint64, AddInt32, ...).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldVar resolves a selector to the struct field it reads, skipping
// fields whose type is a typed sync/atomic wrapper (their method set is
// the only access path, so mixing is impossible).
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	t := v.Type()
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
			return nil
		}
	}
	return v
}

// checkPlainFieldUses walks one file and reports plain accesses of
// fields in the atomic table.
func checkPlainFieldUses(pass *Pass, info *types.Info, file *ast.File, atomicUses map[*types.Var][]atomicFieldUse, consumed map[*ast.SelectorExpr]bool) {
	// tracked resolves a selector to a table entry.
	tracked := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return nil, nil
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return nil, nil
		}
		if _, hit := atomicUses[v]; !hit {
			return nil, nil
		}
		return sel, v
	}
	elemMode := func(v *types.Var) bool {
		for _, u := range atomicUses[v] {
			if u.elem {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, v *types.Var, how string) {
		u := atomicUses[v][0]
		pass.Reportf(pos, "field %s of %s is accessed through sync/atomic at %s:%d but %s here; every access to an atomic word must be atomic — use a typed atomic.* field or atomic calls everywhere",
			v.Name(), ownerName(v), u.pos.Filename, u.pos.Line, how)
	}

	// handled marks selectors already judged by a parent construct so
	// the final sweep does not double-report them.
	handled := make(map[*ast.SelectorExpr]bool)
	var sels []*ast.SelectorExpr

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if _, v := tracked(n); v != nil {
				sels = append(sels, n)
			}

		case *ast.IndexExpr:
			if sel, v := tracked(n.X); v != nil && elemMode(v) {
				report(n.Pos(), v, "an element is read or written plainly")
				handled[sel] = true
			}

		case *ast.SliceExpr:
			// Re-slicing reads only the header.
			if sel, v := tracked(n.X); v != nil && elemMode(v) {
				handled[sel] = true
			}

		case *ast.RangeStmt:
			if sel, v := tracked(n.X); v != nil && elemMode(v) {
				report(n.X.Pos(), v, "its elements are read plainly by range")
				handled[sel] = true
			}

		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && isBuiltin(info, id) {
				switch id.Name {
				case "len", "cap":
					if sel, v := tracked(n.Args[0]); v != nil && elemMode(v) {
						handled[sel] = true // header-only
					}
				case "clear", "copy", "append":
					for _, a := range n.Args {
						if sel, v := tracked(a); v != nil && elemMode(v) {
							report(a.Pos(), v, fmt.Sprintf("its elements are written plainly by %s", id.Name))
							handled[sel] = true
						}
					}
				}
			}

		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, v := tracked(lhs); v != nil {
					if elemMode(v) {
						handled[sel] = true // replacing the header, not the elements
					} else {
						report(lhs.Pos(), v, "it is assigned plainly")
						handled[sel] = true
					}
				}
			}

		case *ast.IncDecStmt:
			if sel, v := tracked(n.X); v != nil && !elemMode(v) {
				report(n.X.Pos(), v, "it is incremented plainly")
				handled[sel] = true
			}
		}
		return true
	})

	for _, sel := range sels {
		if handled[sel] || consumed[sel] {
			continue
		}
		_, v := tracked(sel)
		if v == nil {
			continue
		}
		if elemMode(v) {
			report(sel.Pos(), v, "the slice escapes or is read outside the atomic discipline")
		} else {
			report(sel.Pos(), v, "it is read plainly")
		}
	}
}

// ownerName names the struct type a field belongs to, for diagnostics.
func ownerName(v *types.Var) string {
	// The field's parent scope does not name the struct; walk the
	// package's named types instead. Falling back to the package name
	// keeps the message useful when the owner is an anonymous struct.
	if pkg := v.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return pkg.Name() + "." + name
				}
			}
		}
		return pkg.Name()
	}
	return "?"
}
