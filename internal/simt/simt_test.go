package simt

import (
	"testing"
	"time"
)

func testDevice() *Device {
	return NewDevice(GTX580())
}

func TestAllocFreeAccounting(t *testing.T) {
	d := testDevice()
	b, err := d.Alloc("x", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemoryUsed() != 4096 {
		t.Fatalf("used=%d, want 4096", d.MemoryUsed())
	}
	d.Free(b)
	if d.MemoryUsed() != 0 {
		t.Fatalf("used=%d after free", d.MemoryUsed())
	}
	d.Free(b) // double free is a no-op
	if d.MemoryUsed() != 0 {
		t.Fatal("double free changed accounting")
	}
}

func TestAllocExceedsMemory(t *testing.T) {
	spec := GTX580()
	spec.MemoryBytes = 1 << 10
	d := NewDevice(spec)
	if _, err := d.Alloc("big", 1<<20); err == nil {
		t.Fatal("oversized allocation accepted")
	}
}

func TestBuffersDoNotOverlapInAddressSpace(t *testing.T) {
	d := testDevice()
	a, _ := d.Alloc("a", 100)
	b, _ := d.Alloc("b", 100)
	endA := a.base + int64(a.Len())*4
	if b.base < endA {
		t.Fatalf("buffers overlap: a=[%d,%d) b starts at %d", a.base, endA, b.base)
	}
	if b.base%d.Spec().TransactionBytes != 0 {
		t.Fatalf("buffer base %d not segment aligned", b.base)
	}
}

func TestKernelComputesAndStores(t *testing.T) {
	d := testDevice()
	in, _ := d.Alloc("in", 1000)
	out, _ := d.Alloc("out", 1000)
	host := make([]uint32, 1000)
	for i := range host {
		host[i] = uint32(i)
	}
	in.CopyIn(0, host)
	ks := d.Launch("double", 1000, func(t *Thread) {
		v := t.Load(in, t.Global)
		t.ALU(1)
		t.Store(out, t.Global, 2*v)
	})
	res := make([]uint32, 1000)
	out.CopyOut(0, res)
	for i, v := range res {
		if v != uint32(2*i) {
			t.Fatalf("out[%d]=%d, want %d", i, v, 2*i)
		}
	}
	if ks.Threads != 1000 || ks.Warps != (1000+31)/32 {
		t.Fatalf("threads=%d warps=%d", ks.Threads, ks.Warps)
	}
	if ks.ModeledTime <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestCoalescedVsScatteredTransactions(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 32*64)
	coalesced := d.Launch("coalesced", 32, func(t *Thread) {
		t.Load(buf, t.Global) // 32 consecutive words: one 128B transaction
	})
	scattered := d.Launch("scattered", 32, func(t *Thread) {
		t.Load(buf, t.Global*64) // one word per segment: 32 transactions
	})
	if coalesced.LoadTransactions != 1 {
		t.Fatalf("coalesced access produced %d transactions, want 1", coalesced.LoadTransactions)
	}
	if scattered.LoadTransactions != 32 {
		t.Fatalf("scattered access produced %d transactions, want 32", scattered.LoadTransactions)
	}
	if scattered.ModeledTime <= coalesced.ModeledTime {
		t.Fatal("scattered access not modeled slower than coalesced")
	}
}

func TestDivergenceDetection(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 64)
	uniform := d.Launch("uniform", 32, func(t *Thread) {
		t.ALU(3)
		t.Store(buf, t.Global, 1)
	})
	if uniform.DivergentWarps != 0 {
		t.Fatalf("uniform kernel flagged divergent")
	}
	divergent := d.Launch("divergent", 32, func(t *Thread) {
		if t.Global%2 == 0 {
			t.ALU(10)
		}
		t.Store(buf, t.Global, 1)
	})
	if divergent.DivergentWarps != 1 {
		t.Fatalf("divergent warps=%d, want 1", divergent.DivergentWarps)
	}
	// Predicated execution: warp pays the max lane cost, not the sum.
	if divergent.WarpInstructions != 10+1 {
		t.Fatalf("warp instructions=%d, want 11", divergent.WarpInstructions)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 128)
	d.Launch("k1", 128, func(t *Thread) { t.Store(buf, t.Global, 0) })
	d.Launch("k2", 128, func(t *Thread) { t.Load(buf, t.Global) })
	s := d.Stats()
	if s.Kernels != 2 || s.Threads != 256 {
		t.Fatalf("stats=%+v", s)
	}
	if s.BytesMoved == 0 || s.ModeledTime == 0 {
		t.Fatal("no traffic/time recorded")
	}
	d.ResetStats()
	if d.Stats().Kernels != 0 || d.Stats().ModeledTime != 0 {
		t.Fatal("reset incomplete")
	}
	if d.MemoryUsed() == 0 {
		t.Fatal("reset should not free allocations")
	}
}

func TestHostCopyMetering(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 1024)
	words := make([]uint32, 512)
	buf.CopyIn(0, words)
	buf.CopyOut(256, words[:256])
	s := d.Stats()
	if s.HostCopies != 2 {
		t.Fatalf("copies=%d, want 2", s.HostCopies)
	}
	if s.HostBytes != 512*4+256*4 {
		t.Fatalf("bytes=%d", s.HostBytes)
	}
	if s.ModeledTime < 2*d.Spec().PCIeLatency {
		t.Fatal("copy latency not charged")
	}
}

func TestPartialWarpAndZeroThreads(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 40)
	ks := d.Launch("partial", 40, func(t *Thread) { t.Store(buf, t.Global, uint32(t.Global)) })
	if ks.Warps != 2 {
		t.Fatalf("warps=%d, want 2", ks.Warps)
	}
	for i, v := range buf.HostData() {
		if v != uint32(i) {
			t.Fatalf("buf[%d]=%d", i, v)
		}
	}
	ks = d.Launch("empty", 0, func(t *Thread) { t.ALU(1) })
	if ks.Warps != 0 || ks.WarpInstructions != 0 {
		t.Fatalf("empty launch stats: %+v", ks)
	}
}

func TestBandwidthBoundTimeModel(t *testing.T) {
	// A launch moving B bytes cannot be modeled faster than
	// B/effective-bandwidth.
	d := testDevice()
	n := 1 << 18
	buf, _ := d.Alloc("buf", n)
	ks := d.Launch("stream", n, func(t *Thread) { t.Load(buf, t.Global) })
	bytes := float64(ks.LoadTransactions * d.Spec().TransactionBytes)
	minSec := bytes / (d.Spec().MemBandwidthGBs * 1e9 * d.Spec().BandwidthEfficiency)
	if ks.ModeledTime < time.Duration(minSec*float64(time.Second)) {
		t.Fatalf("modeled time %v below bandwidth bound %v s", ks.ModeledTime, minSec)
	}
}

func TestLaunchStatsDeterministic(t *testing.T) {
	// Stats are aggregated per warp, so concurrent simulation must give
	// identical numbers run to run.
	run := func() KernelStats {
		d := testDevice()
		in, _ := d.Alloc("in", 4096)
		out, _ := d.Alloc("out", 4096)
		return d.Launch("k", 4096, func(t *Thread) {
			v := t.Load(in, (t.Global*7)%4096) // scattered reads
			if t.Global%3 == 0 {
				t.ALU(4)
			}
			t.Store(out, t.Global, v+1) // each thread owns its own slot
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats differ across identical launches:\n%+v\n%+v", a, b)
	}
}

func TestCopyOutStrided(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 20)
	host := make([]uint32, 20)
	for i := range host {
		host[i] = uint32(i * 10)
	}
	buf.CopyIn(0, host)
	before := d.Stats().HostBytes
	dst := make([]uint32, 5)
	buf.CopyOutStrided(1, 4, 5, dst) // elements 1,5,9,13,17
	want := []uint32{10, 50, 90, 130, 170}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst=%v, want %v", dst, want)
		}
	}
	if d.Stats().HostBytes-before != 5*4 {
		t.Fatalf("strided copy metered %d bytes, want 20", d.Stats().HostBytes-before)
	}
}

func TestThreadALUAccounting(t *testing.T) {
	d := testDevice()
	buf, _ := d.Alloc("buf", 32)
	ks := d.Launch("alu", 32, func(t *Thread) {
		t.ALU(5)
		t.Store(buf, t.Global, 1) // 1 instruction
	})
	if ks.WarpInstructions != 6 {
		t.Fatalf("warp instructions=%d, want 6 (5 ALU + 1 store)", ks.WarpInstructions)
	}
}

func TestGTX480SlowerThanGTX580(t *testing.T) {
	s80, s48 := GTX580(), GTX480()
	if s48.NumSMs >= s80.NumSMs || s48.CoreClockMHz >= s80.CoreClockMHz ||
		s48.MemBandwidthGBs >= s80.MemBandwidthGBs {
		t.Fatalf("GTX480 spec not strictly weaker: %+v vs %+v", s48, s80)
	}
}
