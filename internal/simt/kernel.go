package simt

import (
	"sync"
	"time"
)

// Thread is the per-thread kernel context. Kernels read and write device
// memory exclusively through it so the simulator can observe the access
// pattern. A kernel must only write locations no other thread of the
// same launch reads or writes (GPHAST's kernels have this property: one
// thread owns one distance label); the simulator does not order threads
// within a launch.
type Thread struct {
	// Global is the global thread index in [0, threads).
	Global int32
	instr  int64
	acc    []access
}

type access struct {
	addr  int64
	store bool
}

// Load reads word i of b, tracing the access. The access trace is
// host-side instrumentation: its growth is charged to the simulator,
// not to the kernels, which on a real device would not run it at all.
//
//phast:offpath
func (t *Thread) Load(b *Buffer, i int32) uint32 {
	t.acc = append(t.acc, access{addr: b.base + int64(i)*4})
	t.instr++
	return b.data[i]
}

// Store writes word i of b, tracing the access. Off the hot path for
// the same reason as Load: the trace is simulator instrumentation.
//
//phast:offpath
func (t *Thread) Store(b *Buffer, i int32, v uint32) {
	t.acc = append(t.acc, access{addr: b.base + int64(i)*4, store: true})
	t.instr++
	b.data[i] = v
}

// ALU accounts n arithmetic/control instructions to the thread (loads and
// stores meter themselves).
func (t *Thread) ALU(n int) { t.instr += int64(n) }

func (t *Thread) reset(global int32) {
	t.Global = global
	t.instr = 0
	t.acc = t.acc[:0]
}

// KernelFunc is the body executed by every thread of a launch.
type KernelFunc func(t *Thread)

// KernelStats summarizes one launch.
type KernelStats struct {
	Threads           int
	Warps             int
	WarpInstructions  int64
	LoadTransactions  int64
	StoreTransactions int64
	DivergentWarps    int64
	ModeledTime       time.Duration
}

// Launch executes kernel over `threads` threads grouped into warps,
// gathers coalescing statistics and charges the cost model. Warps are
// simulated concurrently on host goroutines; statistics are
// deterministic because they are aggregated per warp.
//
// Launch is //phast:offpath: it is the host/device boundary. Its
// allocations (worker scratch, coalescing maps, goroutines) emulate
// device execution and are charged to the modeled card's time, so the
// hotalloc discipline of the CPU sweeps stops here rather than leaking
// into the simulator.
//
//phast:offpath
func (d *Device) Launch(name string, threads int, kernel KernelFunc) KernelStats {
	ws := d.spec.WarpSize
	warps := (threads + ws - 1) / ws
	type partial struct {
		warpInstr, loadTx, storeTx, divergent int64
	}
	parts := make([]partial, d.workers)

	var wg sync.WaitGroup
	chunk := (warps + d.workers - 1) / d.workers
	runWorker := func(worker, wlo, whi int) {
		th := d.pool[worker]
		// Per-warp scratch shared across this worker's warps.
		instr := make([]int64, ws)
		accs := make([][]access, ws)
		segs := map[int64]struct{}{}
		p := &parts[worker]
		for w := wlo; w < whi; w++ {
			lanes := ws
			if rem := threads - w*ws; rem < lanes {
				lanes = rem
			}
			maxSlots := 0
			var warpMax int64
			divergent := false
			for lane := 0; lane < lanes; lane++ {
				th.reset(int32(w*ws + lane))
				kernel(th)
				instr[lane] = th.instr
				accs[lane] = append(accs[lane][:0], th.acc...)
				if th.instr != instr[0] {
					divergent = true
				}
				if th.instr > warpMax {
					warpMax = th.instr
				}
				if len(th.acc) > maxSlots {
					maxSlots = len(th.acc)
				}
			}
			// Lockstep coalescing: the j-th access of each lane belongs to
			// the same warp-wide memory instruction; count the distinct
			// TransactionBytes segments it touches, loads and stores
			// separately.
			for slot := 0; slot < maxSlots; slot++ {
				for _, isStore := range [2]bool{false, true} {
					clear(segs)
					for lane := 0; lane < lanes; lane++ {
						if slot >= len(accs[lane]) {
							if lanes > 1 {
								divergent = true
							}
							continue
						}
						a := accs[lane][slot]
						if a.store != isStore {
							continue
						}
						segs[a.addr/d.spec.TransactionBytes] = struct{}{}
					}
					if isStore {
						p.storeTx += int64(len(segs))
					} else {
						p.loadTx += int64(len(segs))
					}
				}
			}
			p.warpInstr += warpMax
			if divergent {
				p.divergent++
			}
		}
	}
	if d.workers == 1 || warps <= 1 {
		runWorker(0, 0, warps)
	} else {
		for worker := 0; worker < d.workers; worker++ {
			wlo, whi := worker*chunk, (worker+1)*chunk
			if whi > warps {
				whi = warps
			}
			if wlo >= whi {
				continue
			}
			wg.Add(1)
			go func(worker, wlo, whi int) {
				defer wg.Done()
				runWorker(worker, wlo, whi)
			}(worker, wlo, whi)
		}
		wg.Wait()
	}

	var ks KernelStats
	ks.Threads = threads
	ks.Warps = warps
	for _, p := range parts {
		ks.WarpInstructions += p.warpInstr
		ks.LoadTransactions += p.loadTx
		ks.StoreTransactions += p.storeTx
		ks.DivergentWarps += p.divergent
	}
	ks.ModeledTime = d.modelKernelTime(ks)

	d.stats.Kernels++
	d.stats.Threads += int64(threads)
	d.stats.Warps += int64(warps)
	d.stats.WarpInstructions += ks.WarpInstructions
	d.stats.LoadTransactions += ks.LoadTransactions
	d.stats.StoreTransactions += ks.StoreTransactions
	d.stats.BytesMoved += (ks.LoadTransactions + ks.StoreTransactions) * d.spec.TransactionBytes
	d.stats.DivergentWarps += ks.DivergentWarps
	d.stats.ModeledTime += ks.ModeledTime
	return ks
}

// modelKernelTime converts launch statistics into time on the modeled
// card: the kernel is limited by either DRAM bandwidth or issue
// throughput (GPHAST saturates the former; Section VI), plus the fixed
// launch overhead (one launch per level, so ~140 launches per tree).
func (d *Device) modelKernelTime(ks KernelStats) time.Duration {
	bytes := float64((ks.LoadTransactions + ks.StoreTransactions) * d.spec.TransactionBytes)
	memSec := bytes / (d.spec.MemBandwidthGBs * 1e9 * d.spec.BandwidthEfficiency)
	cycles := float64(ks.WarpInstructions) / (float64(d.spec.NumSMs) * d.spec.IPCPerSM)
	compSec := cycles / (d.spec.CoreClockMHz * 1e6)
	sec := memSec
	if compSec > sec {
		sec = compSec
	}
	return d.spec.LaunchOverhead + time.Duration(sec*float64(time.Second))
}
