// Package simt is a software model of the GPU that Section VI of the
// paper targets (an NVIDIA GTX 580, Fermi). The real hardware is not
// available in this environment, so GPHAST's kernels execute here
// instead: the simulator runs every thread of every launch for real —
// results are exact — while tracking how the threads would have mapped
// onto the machine:
//
//   - threads are grouped into 32-wide warps executing in lockstep
//     (SIMT); per-warp issued instructions are the per-thread maximum,
//     modeling predicated execution, and warps whose threads disagree
//     are counted as divergent;
//   - every Load/Store is traced; the accesses of a warp's threads at
//     the same instruction slot are coalesced into 128-byte DRAM
//     transactions, exactly the efficiency constraint Section VI
//     designs the kernels around;
//   - a cost model converts transaction and instruction counts into a
//     modeled kernel time, max(memory time, compute time) + launch
//     overhead, reflecting that GPHAST is bandwidth-bound;
//   - host↔device copies are metered against a PCIe model (the paper
//     copies the ~2KB CH search space per tree);
//   - allocations are charged against the card's memory (1.5 GB),
//     reproducing the memory column of Table III.
package simt

import (
	"fmt"
	"runtime"
	"time"
)

// DeviceSpec is the modeled hardware.
type DeviceSpec struct {
	Name             string
	NumSMs           int     // streaming multiprocessors (cores in the paper's wording)
	WarpSize         int     // threads executing in lockstep
	CoreClockMHz     float64 // shader clock
	MemBandwidthGBs  float64 // peak DRAM bandwidth
	MemoryBytes      int64   // on-board RAM
	TransactionBytes int64   // DRAM transaction (coalescing segment) size
	PCIeBandwidthGBs float64 // host<->device copy bandwidth
	PCIeLatency      time.Duration
	LaunchOverhead   time.Duration // per kernel launch
	IPCPerSM         float64       // warp instructions issued per SM per cycle
	// BandwidthEfficiency derates peak DRAM bandwidth to a sustainable
	// fraction (real kernels do not hit the pin rate).
	BandwidthEfficiency float64
}

// GTX580 returns the specification of the paper's primary card
// (Section VI / VIII-D).
func GTX580() DeviceSpec {
	return DeviceSpec{
		Name:                "NVIDIA GTX 580",
		NumSMs:              16,
		WarpSize:            32,
		CoreClockMHz:        772,
		MemBandwidthGBs:     192.4,
		MemoryBytes:         1536 << 20,
		TransactionBytes:    128,
		PCIeBandwidthGBs:    6.0,
		PCIeLatency:         8 * time.Microsecond,
		LaunchOverhead:      4 * time.Microsecond,
		IPCPerSM:            1.0,
		BandwidthEfficiency: 0.75,
	}
}

// GTX480 returns the predecessor card used in Table VI: one fewer SM and
// lower core (701 vs 772 MHz) and memory (1848 vs 2004 MHz) clocks.
func GTX480() DeviceSpec {
	s := GTX580()
	s.Name = "NVIDIA GTX 480"
	s.NumSMs = 15
	s.CoreClockMHz = 701
	s.MemBandwidthGBs = 192.4 * 1848 / 2004
	return s
}

// RunStats accumulates execution statistics across launches and copies.
type RunStats struct {
	Kernels           int
	Threads           int64
	Warps             int64
	WarpInstructions  int64
	LoadTransactions  int64
	StoreTransactions int64
	BytesMoved        int64 // device DRAM traffic implied by transactions
	DivergentWarps    int64
	HostCopies        int
	HostBytes         int64
	ModeledTime       time.Duration
}

// Device is a simulated GPU instance.
type Device struct {
	spec     DeviceSpec
	used     int64
	nextBase int64
	stats    RunStats
	workers  int
	pool     []*Thread
}

// NewDevice creates a device with the given spec, simulating kernels
// with up to GOMAXPROCS host goroutines.
func NewDevice(spec DeviceSpec) *Device {
	w := runtime.GOMAXPROCS(0)
	d := &Device{spec: spec, workers: w, nextBase: 1 << 20}
	d.pool = make([]*Thread, w)
	for i := range d.pool {
		d.pool[i] = &Thread{}
	}
	return d
}

// Spec returns the modeled hardware description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Stats returns the accumulated statistics.
func (d *Device) Stats() RunStats { return d.stats }

// ResetStats zeroes the accumulated statistics (allocations persist).
func (d *Device) ResetStats() { d.stats = RunStats{} }

// MemoryUsed reports bytes currently allocated on the device.
func (d *Device) MemoryUsed() int64 { return d.used }

// Buffer is a device-resident array of 32-bit words.
type Buffer struct {
	name string
	base int64 // simulated byte address, for coalescing analysis
	data []uint32
	dev  *Device
}

// Alloc reserves a device buffer of n words, failing when the card's
// memory would be exceeded — the constraint that bounds k in Table III.
func (d *Device) Alloc(name string, n int) (*Buffer, error) {
	bytes := int64(n) * 4
	if d.used+bytes > d.spec.MemoryBytes {
		return nil, fmt.Errorf("simt: allocating %q (%d MB) exceeds device memory (%d of %d MB used)",
			name, bytes>>20, d.used>>20, d.spec.MemoryBytes>>20)
	}
	d.used += bytes
	b := &Buffer{name: name, base: d.nextBase, data: make([]uint32, n), dev: d}
	// Keep buffers segment-aligned and non-overlapping in the simulated
	// address space.
	d.nextBase += (bytes + d.spec.TransactionBytes) / d.spec.TransactionBytes * d.spec.TransactionBytes
	return b, nil
}

// Free releases the buffer's device memory.
func (d *Device) Free(b *Buffer) {
	if b.data != nil {
		d.used -= int64(len(b.data)) * 4
		b.data = nil
	}
}

// Len returns the buffer length in words.
func (b *Buffer) Len() int { return len(b.data) }

// CopyIn transfers words from the host into the buffer at offset,
// metering the PCIe model.
func (b *Buffer) CopyIn(offset int, words []uint32) {
	copy(b.data[offset:], words)
	b.dev.meterCopy(int64(len(words)) * 4)
}

// CopyOut transfers words from the buffer into the host slice.
func (b *Buffer) CopyOut(offset int, words []uint32) {
	copy(words, b.data[offset:offset+len(words)])
	b.dev.meterCopy(int64(len(words)) * 4)
}

// CopyOutStrided transfers count words starting at start with the given
// stride (in words) into dst, metering only the words moved — the
// strided-DMA readback GPHAST uses to fetch one tree's labels out of a
// k-interleaved label array.
func (b *Buffer) CopyOutStrided(start, stride, count int, dst []uint32) {
	for i := 0; i < count; i++ {
		dst[i] = b.data[start+i*stride]
	}
	b.dev.meterCopy(int64(count) * 4)
}

// HostData exposes the backing array without metering; tests and
// assertions use it, kernels and production code must not.
func (b *Buffer) HostData() []uint32 { return b.data }

func (d *Device) meterCopy(bytes int64) {
	d.stats.HostCopies++
	d.stats.HostBytes += bytes
	t := d.spec.PCIeLatency +
		time.Duration(float64(bytes)/(d.spec.PCIeBandwidthGBs*1e9)*float64(time.Second))
	d.stats.ModeledTime += t
}
