package snapshot

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/roadnet"
)

// fixture builds a small road network and its hierarchy once per test.
func fixture(t testing.TB) (*graph.Graph, *ch.Hierarchy) {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 28, Height: 24, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	return net.Graph, h
}

// engineConfigs enumerates every sweep mode × stream layout the snapshot
// must round-trip byte-identically.
func engineConfigs() []struct {
	name string
	opt  core.Options
} {
	return []struct {
		name string
		opt  core.Options
	}{
		{"reordered/packed", core.Options{Mode: core.SweepReordered}},
		{"reordered/packedz", core.Options{Mode: core.SweepReordered, CompressedSweep: true}},
		{"reordered/legacy", core.Options{Mode: core.SweepReordered, PackedSweep: core.PackedOff}},
		{"levelorder/packed", core.Options{Mode: core.SweepLevelOrder}},
		{"levelorder/packedz", core.Options{Mode: core.SweepLevelOrder, CompressedSweep: true}},
		{"rankorder/packed", core.Options{Mode: core.SweepRankOrder}},
		{"rankorder/legacy", core.Options{Mode: core.SweepRankOrder, PackedSweep: core.PackedOff}},
	}
}

// checkIdentical compares single-tree and multi-tree (k ∈ {1,4,16})
// labels of the two engines over every vertex, requiring byte equality.
func checkIdentical(t *testing.T, n int, src, got *core.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := make([]uint32, n)
	b := make([]uint32, n)
	for trial := 0; trial < 4; trial++ {
		s := int32(rng.Intn(n))
		src.Tree(s)
		got.Tree(s)
		src.CopyDistances(a)
		got.CopyDistances(b)
		if !bytes.Equal(bytesOfUint32s(a), bytesOfUint32s(b)) {
			t.Fatalf("single-tree labels differ from source %d", s)
		}
	}
	for _, k := range []int{1, 4, 16} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		useLanes := k%4 == 0
		src.MultiTree(sources, useLanes)
		got.MultiTree(sources, useLanes)
		for i := 0; i < k; i++ {
			src.CopyLaneDistances(i, a)
			got.CopyLaneDistances(i, b)
			if !bytes.Equal(bytesOfUint32s(a), bytesOfUint32s(b)) {
				t.Fatalf("k=%d lane %d labels differ", k, i)
			}
		}
	}
}

func TestRoundTripAllModes(t *testing.T) {
	g, h := fixture(t)
	n := g.NumVertices()
	for _, cfg := range engineConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			opt := cfg.opt
			opt.Workers = 1
			eng, err := core.NewEngine(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			size, err := Write(&buf, eng.Parts(), g)
			if err != nil {
				t.Fatal(err)
			}
			if size != int64(buf.Len()) {
				t.Fatalf("Write reported %d bytes, wrote %d", size, buf.Len())
			}

			// Heap reader.
			snap, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if snap.Size != size {
				t.Fatalf("snapshot size %d, want %d", snap.Size, size)
			}
			if !snap.Orig.Equal(g) {
				t.Fatal("original graph did not round-trip")
			}
			loaded, err := core.NewEngineFromParts(snap.Parts, 1, core.SnapshotInfo{Bytes: snap.Size, Hold: snap.Hold})
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, n, eng, loaded)

			// mmap loader.
			path := filepath.Join(t.TempDir(), "engine.snap")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			msnap, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			mloaded, err := core.NewEngineFromParts(msnap.Parts, 1, core.SnapshotInfo{Bytes: msnap.Size, Hold: msnap.Hold})
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, n, eng, mloaded)
		})
	}
}

// TestLoadAliasesMapping is the zero-copy acceptance test: every large
// array of a loaded snapshot must point into the mapped region, not at
// a heap copy.
func TestLoadAliasesMapping(t *testing.T) {
	g, h := fixture(t)
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, eng.Parts(), g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := snap.Hold.(*mapping)
	if !ok {
		t.Fatalf("snapshot hold is %T, want *mapping", snap.Hold)
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(m.bytes())))
	end := base + uintptr(len(m.bytes()))
	inRegion := func(what string, ptr unsafe.Pointer, size uintptr) {
		t.Helper()
		p := uintptr(ptr)
		if size == 0 {
			return
		}
		if p < base || p+size > end {
			t.Errorf("%s at %#x (+%d) escapes the mapping [%#x,%#x): copied, not aliased", what, p, size, base, end)
		}
	}
	p := snap.Parts
	hh := p.H
	inRegion("hierarchy first", unsafe.Pointer(unsafe.SliceData(hh.G.FirstOut())), uintptr(len(hh.G.FirstOut()))*4)
	inRegion("hierarchy arcs", unsafe.Pointer(unsafe.SliceData(hh.G.ArcList())), uintptr(len(hh.G.ArcList()))*8)
	inRegion("rank", unsafe.Pointer(unsafe.SliceData(hh.Rank)), uintptr(len(hh.Rank))*4)
	inRegion("level", unsafe.Pointer(unsafe.SliceData(hh.Level)), uintptr(len(hh.Level))*4)
	inRegion("up arcs", unsafe.Pointer(unsafe.SliceData(hh.Up.ArcList())), uintptr(len(hh.Up.ArcList()))*8)
	inRegion("down-in arcs", unsafe.Pointer(unsafe.SliceData(hh.DownIn.ArcList())), uintptr(len(hh.DownIn.ArcList()))*8)
	inRegion("up mids", unsafe.Pointer(unsafe.SliceData(hh.UpMid)), uintptr(len(hh.UpMid))*4)
	inRegion("toEngine", unsafe.Pointer(unsafe.SliceData(p.ToEngine)), uintptr(len(p.ToEngine))*4)
	inRegion("toOrig", unsafe.Pointer(unsafe.SliceData(p.ToOrig)), uintptr(len(p.ToOrig))*4)
	inRegion("level ranges", unsafe.Pointer(unsafe.SliceData(p.LevelRanges)), uintptr(len(p.LevelRanges))*8)
	inRegion("packed stream", unsafe.Pointer(unsafe.SliceData(p.Packed.Stream())), uintptr(len(p.Packed.Stream()))*4)
	inRegion("packed blocks", unsafe.Pointer(unsafe.SliceData(p.Packed.BlockStarts())), uintptr(len(p.Packed.BlockStarts()))*8)
	inRegion("chunk starts", unsafe.Pointer(unsafe.SliceData(p.ChunkStart)), uintptr(len(p.ChunkStart))*4)
	inRegion("chunk deps", unsafe.Pointer(unsafe.SliceData(p.ChunkDep)), uintptr(len(p.ChunkDep))*4)
	inRegion("orig first", unsafe.Pointer(unsafe.SliceData(snap.Orig.FirstOut())), uintptr(len(snap.Orig.FirstOut()))*4)
	inRegion("orig arcs", unsafe.Pointer(unsafe.SliceData(snap.Orig.ArcList())), uintptr(len(snap.Orig.ArcList()))*8)
}

// TestMetricIdentityRoundTrips checks the v2 hierarchy semantics carry
// through the snapshot: epoch and name survive.
func TestMetricIdentityRoundTrips(t *testing.T) {
	g, h := fixture(t)
	h.MetricEpoch = 42
	h.MetricName = "truck"
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, eng.Parts(), g); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Parts.H.MetricEpoch != 42 || snap.Parts.H.MetricName != "truck" {
		t.Fatalf("metric identity lost: epoch=%d name=%q", snap.Parts.H.MetricEpoch, snap.Parts.H.MetricName)
	}
}

// TestRejectsForgery hand-forges the headers a hostile or corrupt file
// could present; every one must fail cleanly, never panic or alias.
func TestRejectsForgery(t *testing.T) {
	g, h := fixture(t)
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, eng.Parts(), g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	put64 := func(b []byte, off int64, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+int64(i)] = byte(v >> (8 * i))
		}
	}
	forge := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: forged snapshot accepted", name)
		}
	}
	forge("bad magic", func(b []byte) []byte { put64(b, 0, 0xdead); return b })
	forge("bad version", func(b []byte) []byte { put64(b, 8, 99); return b })
	forge("wrong file size", func(b []byte) []byte { put64(b, 16, uint64(len(b))+8); return b })
	forge("unknown flags", func(b []byte) []byte { put64(b, 24, 1<<40); return b })
	forge("huge n", func(b []byte) []byte { put64(b, 32, 1<<40); return b })
	forge("huge name", func(b []byte) []byte { put64(b, 64, 1<<20); return b })
	forge("wrong section count", func(b []byte) []byte { put64(b, 72, 7); return b })
	forge("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	forge("misaligned section", func(b []byte) []byte {
		off := int64(headerWords * 8)
		off += 0 // name is empty in the fixture
		put64(b, off, u64at(b, off)+4)
		return b
	})
	forge("section escapes file", func(b []byte) []byte {
		off := int64(headerWords * 8)
		put64(b, off+8, uint64(len(b)))
		return b
	})
	forge("overlapping sections", func(b []byte) []byte {
		// Point section 1 at section 0's offset.
		off := int64(headerWords * 8)
		put64(b, off+16, u64at(b, off))
		return b
	})
}

// FuzzSnapshotRoundTrip mutates the header and section table of a valid
// snapshot (plus arbitrary truncations): the reader must either reject
// the forgery or produce an engine that passes parts validation — it
// must never panic or index out of range.
func FuzzSnapshotRoundTrip(f *testing.F) {
	net, err := roadnet.Generate(roadnet.Params{Width: 10, Height: 8, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	h := ch.Build(net.Graph, ch.Options{Workers: 1})
	eng, err := core.NewEngine(h, core.Options{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, eng.Parts(), net.Graph); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(int64(0), uint64(0), 0)
	f.Add(int64(16), uint64(1<<60), len(good))
	f.Add(int64(headerWords*8+8), uint64(3), len(good)/2)
	f.Fuzz(func(t *testing.T, off int64, val uint64, cut int) {
		b := append([]byte(nil), good...)
		if cut >= 0 && cut < len(b) {
			b = b[:cut]
		}
		// Constrain the mutation to the header + section table region —
		// the fields the hardened reader must never trust.
		region := int64(headerWords*8 + numSections*16)
		if off >= 0 && off+8 <= region && off+8 <= int64(len(b)) {
			for i := 0; i < 8; i++ {
				b[off+int64(i)] = byte(val >> (8 * i))
			}
		}
		snap, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		// Accepted: the parts must also survive engine assembly (or be
		// rejected there) without panicking.
		if _, err := core.NewEngineFromParts(snap.Parts, 1, core.SnapshotInfo{}); err != nil {
			return
		}
	})
}
