//go:build !unix

package snapshot

import "os"

// mapping on platforms without a usable mmap holds a private aligned
// heap copy of the file. Load degrades to Read semantics: correct, but
// without cross-process page sharing.
type mapping struct {
	data []byte
}

// bytes returns the buffered file contents.
//
//phast:readonly
func (m *mapping) bytes() []byte { return m.data }

// openMapping reads path into an aligned buffer. The second result is
// false: these bytes are private, not a shared mapping.
func openMapping(path string) (*mapping, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	data, err := readAligned(f)
	if err != nil {
		return nil, false, err
	}
	return &mapping{data: data}, false, nil
}
