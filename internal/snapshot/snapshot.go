// Package snapshot defines the versioned binary format for a complete
// PHAST engine — the CH hierarchy (v2 semantics: metric identity
// included), the original graph, the packed or compressed sweep stream,
// the chunk schedule with its precomputed dependency bounds, and the
// vertex orders and level ranges — laid out so a reader aliases every
// large array directly out of an mmap'd file with zero copies.
//
// # Format
//
// All integers are little-endian. The file is:
//
//	header      10 × uint64: magic, version, file size, flags, n,
//	            shortcuts, max level, metric epoch, metric name length,
//	            section count
//	name        metric name bytes, zero-padded to a multiple of 8
//	table       sectionCount × (offset uint64, byteLen uint64)
//	sections    each starting at an 8-byte-aligned offset, in table
//	            order, ascending, with zero padding between
//
// Every array section stores its elements verbatim in engine memory
// layout — []int32, []graph.Arc (8 bytes: head int32 + weight uint32),
// []uint32, []int64 (block starts), [][2]int32 (level ranges), or raw
// bytes (the compressed stream, stored with its wide-load pad so it is
// sweep-safe in place). Because each section offset is 8-byte aligned
// and the element types have no padding, a reader on a little-endian
// 64-bit platform reconstructs each array with one unsafe.Slice over
// the mapped region: zero large-array copies, N processes sharing one
// page-cache copy of the file.
//
// # Hardening
//
// The reader trusts nothing: magic/version/size, the section table
// (alignment, bounds, ordering, exact lengths against n and the arc
// counts), permutations, mid ranges, the full packed/compressed stream
// grammar, and the chunk schedule are all validated before an engine is
// assembled — the same discipline as ch.ReadHierarchy, extended to the
// aliasing layout (FuzzSnapshotRoundTrip forges headers, lengths, and
// alignments against it). Validation reads every section once but
// copies none of them.
//
// # Read-only aliasing convention
//
// A loaded snapshot's arrays alias pages mapped PROT_READ and shared by
// every process serving the same file: a write through them is a
// SIGSEGV at best and cross-process corruption at worst (a private COW
// mapping would silently fork the page). Accessors returning views of
// mapped data are annotated //phast:readonly, and phastlint's
// snapshotalias analyzer flags writes through slices derived from them.
package snapshot

import (
	"fmt"
	"io"
	"strconv"
	"unsafe"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
)

const (
	// Magic spells "PHASTSNP" as a little-endian uint64.
	Magic uint64 = 0x504e535453414850
	// Version of the format this package writes.
	Version = 1

	headerWords = 10
	maxNameLen  = 1 << 10
	// maxDim bounds every count read from the header or derived from a
	// section length before it is used in arithmetic, so forged values
	// cannot overflow offsets or size allocations.
	maxDim = 1 << 31
)

// Section indices of format version 1. The table length is fixed:
// absent arrays (no packed stream, identity order) are zero-length
// sections, not missing ones.
const (
	secHGFirst = iota
	secHGArcs
	secRank
	secLevel
	secUpFirst
	secUpArcs
	secUpMid
	secDownFirst
	secDownArcs
	secDownMid
	secDownInFirst
	secDownInArcs
	secDownInMid
	secToEngine
	secToOrig
	secOrder
	secPos
	secLevelRanges
	secPackedStream
	secPackedBlocks
	secPackedZStream
	secPackedZBlocks
	secChunkStart
	secChunkDep
	secOrigFirst
	secOrigArcs
	numSections
)

// Header flag bits.
const (
	flagModeMask  = 0b11 // core.SweepMode
	flagExplicitV = 1 << 2
	flagPacked    = 1 << 3
	flagPackedZ   = 1 << 4
	flagForkJoin  = 1 << 5
	flagsKnown    = flagModeMask | flagExplicitV | flagPacked | flagPackedZ | flagForkJoin
)

// hostIsAliasable reports whether this platform can alias the on-disk
// layout directly: little-endian with 64-bit ints (block starts are
// stored as int64 and aliased as []int).
func hostIsAliasable() bool {
	probe := uint16(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1 && strconv.IntSize == 64
}

// align8 rounds up to the next multiple of 8.
func align8(x int64) int64 { return (x + 7) &^ 7 }

// bytesOfInt32s views an []int32 as raw bytes without copying.
func bytesOfInt32s(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// bytesOfUint32s views a []uint32 as raw bytes without copying.
func bytesOfUint32s(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// bytesOfArcs views an arc list as raw bytes without copying. graph.Arc
// is int32+uint32 with no padding, so the in-memory layout is already
// the on-disk layout.
func bytesOfArcs(s []graph.Arc) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// bytesOfInts views an []int as raw little-endian int64 bytes (64-bit
// platforms only; Write checks hostIsAliasable first).
func bytesOfInts(s []int) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// bytesOfRanges views a [][2]int32 as raw bytes without copying.
func bytesOfRanges(s [][2]int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// Write serializes the engine parts plus the original (unpermuted)
// graph in snapshot format and returns the total byte count. The writer
// streams sections in order with alignment padding; nothing is staged
// in memory beyond the header and table.
func Write(w io.Writer, p core.EngineParts, orig *graph.Graph) (int64, error) {
	if !hostIsAliasable() {
		return 0, fmt.Errorf("snapshot: writing requires a little-endian 64-bit platform")
	}
	if p.H == nil || p.H.G == nil || orig == nil {
		return 0, fmt.Errorf("snapshot: incomplete engine parts")
	}
	h := p.H
	if len(h.MetricName) > maxNameLen {
		return 0, fmt.Errorf("snapshot: metric name of %d bytes exceeds %d", len(h.MetricName), maxNameLen)
	}

	sections := make([][]byte, numSections)
	sections[secHGFirst] = bytesOfInt32s(h.G.FirstOut())
	sections[secHGArcs] = bytesOfArcs(h.G.ArcList())
	sections[secRank] = bytesOfInt32s(h.Rank)
	sections[secLevel] = bytesOfInt32s(h.Level)
	sections[secUpFirst] = bytesOfInt32s(h.Up.FirstOut())
	sections[secUpArcs] = bytesOfArcs(h.Up.ArcList())
	sections[secUpMid] = bytesOfInt32s(h.UpMid)
	sections[secDownFirst] = bytesOfInt32s(h.Down.FirstOut())
	sections[secDownArcs] = bytesOfArcs(h.Down.ArcList())
	sections[secDownMid] = bytesOfInt32s(h.DownMid)
	sections[secDownInFirst] = bytesOfInt32s(h.DownIn.FirstOut())
	sections[secDownInArcs] = bytesOfArcs(h.DownIn.ArcList())
	sections[secDownInMid] = bytesOfInt32s(h.DownInMid)
	sections[secToEngine] = bytesOfInt32s(p.ToEngine)
	sections[secToOrig] = bytesOfInt32s(p.ToOrig)
	sections[secOrder] = bytesOfInt32s(p.Order)
	sections[secPos] = bytesOfInt32s(p.Pos)
	sections[secLevelRanges] = bytesOfRanges(p.LevelRanges)
	if p.Packed != nil {
		sections[secPackedStream] = bytesOfUint32s(p.Packed.Stream())
		sections[secPackedBlocks] = bytesOfInts(p.Packed.BlockStarts())
	}
	if p.PackedZ != nil {
		// The stored stream includes the wide-load pad past the last
		// block, so the aliased slice is sweep-safe without copying.
		z := p.PackedZ
		sections[secPackedZStream] = z.Stream()
		sections[secPackedZBlocks] = bytesOfInts(z.BlockStarts())
	}
	sections[secChunkStart] = bytesOfInt32s(p.ChunkStart)
	sections[secChunkDep] = bytesOfInt32s(p.ChunkDep)
	sections[secOrigFirst] = bytesOfInt32s(orig.FirstOut())
	sections[secOrigArcs] = bytesOfArcs(orig.ArcList())

	flags := uint64(p.Mode) & flagModeMask
	if p.Order != nil {
		flags |= flagExplicitV
	}
	if p.Packed != nil {
		flags |= flagPacked
	}
	if p.PackedZ != nil {
		flags |= flagPackedZ
	}
	if p.ForkJoin {
		flags |= flagForkJoin
	}

	nameLen := int64(len(h.MetricName))
	tableOff := headerWords*8 + align8(nameLen)
	off := tableOff + numSections*16
	table := make([]uint64, 2*numSections)
	for i, sec := range sections {
		off = align8(off)
		table[2*i] = uint64(off)
		table[2*i+1] = uint64(len(sec))
		off += int64(len(sec))
	}
	fileSize := align8(off)

	header := [headerWords]uint64{
		Magic,
		Version,
		uint64(fileSize),
		flags,
		uint64(h.G.NumVertices()),
		uint64(h.NumShortcuts),
		uint64(h.MaxLevel),
		uint64(h.MetricEpoch),
		uint64(nameLen),
		numSections,
	}

	cw := &countingWriter{w: w}
	writeU64s := func(vals []uint64) error {
		var buf [8]byte
		for _, v := range vals {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			if _, err := cw.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeU64s(header[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(h.MetricName)); err != nil {
		return cw.n, err
	}
	if err := cw.pad(align8(nameLen) - nameLen); err != nil {
		return cw.n, err
	}
	if err := writeU64s(table); err != nil {
		return cw.n, err
	}
	for i, sec := range sections {
		if err := cw.pad(int64(table[2*i]) - cw.n); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(sec); err != nil {
			return cw.n, err
		}
	}
	if err := cw.pad(fileSize - cw.n); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// countingWriter tracks the byte offset so section padding can be
// emitted exactly.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

var zeros [8]byte

func (c *countingWriter) pad(k int64) error {
	if k < 0 {
		return fmt.Errorf("snapshot: internal layout error (negative pad %d)", k)
	}
	for k > 0 {
		step := k
		if step > 8 {
			step = 8
		}
		if _, err := c.Write(zeros[:step]); err != nil {
			return err
		}
		k -= step
	}
	return nil
}

// Snapshot is a decoded snapshot: engine parts and the original graph,
// every array aliasing the backing region (an mmap'd file for Load, an
// aligned heap buffer for Read). The hold reference must stay reachable
// for as long as the arrays are used; core.NewEngineFromParts keeps it
// on the engine's shared state.
type Snapshot struct {
	Parts core.EngineParts
	Orig  *graph.Graph
	// Size is the file size in bytes — the resident footprint every
	// process mapping the same file shares.
	Size int64
	// Mapped reports whether the backing region is an mmap (true for
	// Load on unix hosts) or a private heap buffer (Read, non-unix).
	Mapped bool
	// Hold pins the backing region; pass it to core.NewEngineFromParts.
	Hold any
}

// Load maps the snapshot file and decodes it in place: on unix hosts
// the returned arrays alias the PROT_READ shared mapping (one physical
// copy across all processes serving the file); elsewhere the file is
// read into an aligned buffer first. The mapping stays alive while the
// returned snapshot (or an engine built from it) is reachable and is
// unmapped by its finalizer afterwards.
func Load(path string) (*Snapshot, error) {
	m, mapped, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	s, err := FromBytes(m.bytes())
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	s.Mapped = mapped
	s.Hold = m
	return s, nil
}

// Read decodes a snapshot from a stream into an 8-byte-aligned heap
// buffer — the fallback for non-mmap platforms and round-trip tests.
// The decode path is identical to Load's: the arrays alias the buffer,
// so relative to it there are still zero copies.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := readAligned(r)
	if err != nil {
		return nil, err
	}
	s, err := FromBytes(data)
	if err != nil {
		return nil, err
	}
	s.Hold = data
	return s, nil
}

// readAligned slurps r into a buffer whose base is 8-byte aligned (it
// is backed by a []uint64), so FromBytes can alias typed slices out of
// it exactly as it does over a page-aligned mapping. The incremental
// read never sizes an allocation from file contents — the same
// discipline as ch.readInt32s.
func readAligned(r io.Reader) ([]byte, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("snapshot: empty input")
	}
	words := make([]uint64, (len(raw)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	copy(buf, raw)
	return buf[:len(raw)], nil
}

// u64at reads the little-endian uint64 at data[off:].
func u64at(data []byte, off int64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(data[off+int64(i)]) << (8 * i)
	}
	return v
}

// section is one validated table entry.
type section struct {
	off, len int64
}

// FromBytes decodes a snapshot whose backing bytes start at an
// 8-byte-aligned address, aliasing every array out of data without
// copying. It performs the full hardening pass: header, section table,
// permutations, CSR shapes, mid ranges, stream grammars, and chunk
// schedule are validated before anything is returned.
func FromBytes(data []byte) (*Snapshot, error) {
	if !hostIsAliasable() {
		return nil, fmt.Errorf("snapshot: aliasing requires a little-endian 64-bit platform")
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 != 0 {
		return nil, fmt.Errorf("snapshot: backing buffer is not 8-byte aligned")
	}
	if int64(len(data)) < headerWords*8 {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the header", len(data))
	}
	if got := u64at(data, 0); got != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x", got)
	}
	if v := u64at(data, 8); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	fileSize := u64at(data, 16)
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: header says %d bytes, file has %d", fileSize, len(data))
	}
	flags := u64at(data, 24)
	if flags&^uint64(flagsKnown) != 0 {
		return nil, fmt.Errorf("snapshot: unknown flag bits %#x", flags&^uint64(flagsKnown))
	}
	n64 := u64at(data, 32)
	shortcuts := u64at(data, 40)
	maxLevel := u64at(data, 48)
	metricEpoch := int64(u64at(data, 56))
	nameLen := u64at(data, 64)
	secCount := u64at(data, 72)
	if n64 >= maxDim || shortcuts >= maxDim || maxLevel >= maxDim {
		return nil, fmt.Errorf("snapshot: header dimension out of range")
	}
	n := int(n64)
	if maxLevel > 0 && int64(maxLevel) >= int64(n) {
		return nil, fmt.Errorf("snapshot: max level %d with %d vertices", maxLevel, n)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("snapshot: metric name of %d bytes exceeds %d", nameLen, maxNameLen)
	}
	if secCount != numSections {
		return nil, fmt.Errorf("snapshot: %d sections, version %d has %d", secCount, Version, numSections)
	}
	nameOff := int64(headerWords * 8)
	nameEnd := nameOff + int64(nameLen) // nameLen ≤ maxNameLen, checked above
	tableOff := nameOff + align8(int64(nameLen))
	secBase := tableOff + numSections*16
	if secBase > int64(len(data)) {
		return nil, fmt.Errorf("snapshot: truncated section table")
	}
	name := string(data[nameOff:nameEnd])

	var secs [numSections]section
	prevEnd := secBase
	for i := range secs {
		off := u64at(data, tableOff+int64(i)*16)
		ln := u64at(data, tableOff+int64(i)*16+8)
		if off%8 != 0 {
			return nil, fmt.Errorf("snapshot: section %d offset %d is not 8-byte aligned", i, off)
		}
		if off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fmt.Errorf("snapshot: section %d [%d,+%d) escapes the file", i, off, ln)
		}
		if int64(off) < prevEnd {
			return nil, fmt.Errorf("snapshot: section %d at %d overlaps the previous end %d", i, off, prevEnd)
		}
		secs[i] = section{off: int64(off), len: int64(ln)}
		prevEnd = int64(off) + int64(ln)
	}

	mode := core.SweepMode(flags & flagModeMask)
	explicit := flags&flagExplicitV != 0
	if mode == core.SweepReordered && explicit {
		return nil, fmt.Errorf("snapshot: reordered mode with an explicit sweep order")
	}
	if mode != core.SweepReordered && !explicit {
		return nil, fmt.Errorf("snapshot: %v mode without a sweep order", mode)
	}
	if flags&flagPacked != 0 && flags&flagPackedZ != 0 {
		return nil, fmt.Errorf("snapshot: both stream kinds flagged")
	}

	i32s := func(idx int, count int, what string) ([]int32, error) {
		s := secs[idx]
		if s.len != int64(count)*4 {
			return nil, fmt.Errorf("snapshot: %s section has %d bytes, want %d", what, s.len, count*4)
		}
		if count == 0 {
			return nil, nil
		}
		return unsafe.Slice((*int32)(unsafe.Pointer(&data[s.off])), count), nil
	}
	// i32sAny accepts any multiple-of-4 length and returns the implied
	// count — for sections whose length is only known from the table.
	i32sAny := func(idx int, what string) ([]int32, error) {
		s := secs[idx]
		if s.len%4 != 0 || s.len/4 >= maxDim {
			return nil, fmt.Errorf("snapshot: %s section has odd length %d", what, s.len)
		}
		if s.len == 0 {
			return nil, nil
		}
		return unsafe.Slice((*int32)(unsafe.Pointer(&data[s.off])), s.len/4), nil
	}
	arcsAny := func(idx int, what string) ([]graph.Arc, error) {
		s := secs[idx]
		if s.len%8 != 0 || s.len/8 >= maxDim {
			return nil, fmt.Errorf("snapshot: %s section has odd length %d", what, s.len)
		}
		if s.len == 0 {
			return nil, nil
		}
		return unsafe.Slice((*graph.Arc)(unsafe.Pointer(&data[s.off])), s.len/8), nil
	}
	intsAt := func(idx int, count int, what string) ([]int, error) {
		s := secs[idx]
		if s.len != int64(count)*8 {
			return nil, fmt.Errorf("snapshot: %s section has %d bytes, want %d", what, s.len, count*8)
		}
		if count == 0 {
			return nil, nil
		}
		return unsafe.Slice((*int)(unsafe.Pointer(&data[s.off])), count), nil
	}

	readGraph := func(fIdx, aIdx int, what string) (*graph.Graph, error) {
		first, err := i32s(fIdx, n+1, what+" first")
		if err != nil {
			return nil, err
		}
		arcs, err := arcsAny(aIdx, what+" arcs")
		if err != nil {
			return nil, err
		}
		if first == nil {
			return nil, fmt.Errorf("snapshot: %s has no vertices", what)
		}
		g, err := graph.FromRaw(first, arcs)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %s: %w", what, err)
		}
		return g, nil
	}

	hg, err := readGraph(secHGFirst, secHGArcs, "hierarchy graph")
	if err != nil {
		return nil, err
	}
	up, err := readGraph(secUpFirst, secUpArcs, "upward graph")
	if err != nil {
		return nil, err
	}
	down, err := readGraph(secDownFirst, secDownArcs, "downward graph")
	if err != nil {
		return nil, err
	}
	downIn, err := readGraph(secDownInFirst, secDownInArcs, "incoming downward graph")
	if err != nil {
		return nil, err
	}
	orig, err := readGraph(secOrigFirst, secOrigArcs, "original graph")
	if err != nil {
		return nil, err
	}
	if downIn.NumArcs() != down.NumArcs() {
		return nil, fmt.Errorf("snapshot: DownIn has %d arcs, Down has %d", downIn.NumArcs(), down.NumArcs())
	}
	if orig.NumVertices() != n {
		return nil, fmt.Errorf("snapshot: original graph has %d vertices, want %d", orig.NumVertices(), n)
	}

	rank, err := i32s(secRank, n, "rank")
	if err != nil {
		return nil, err
	}
	if err := checkPermutation(rank, n, "rank"); err != nil {
		return nil, err
	}
	level, err := i32s(secLevel, n, "level")
	if err != nil {
		return nil, err
	}
	for v, l := range level {
		if l < 0 || l > int32(maxLevel) {
			return nil, fmt.Errorf("snapshot: level %d of vertex %d escapes [0,%d]", l, v, maxLevel)
		}
	}
	mids := func(idx int, count int, what string) ([]int32, error) {
		m, err := i32s(idx, count, what)
		if err != nil {
			return nil, err
		}
		for i, v := range m {
			if v < -1 || int(v) >= n {
				return nil, fmt.Errorf("snapshot: %s[%d]=%d escapes [-1,%d)", what, i, v, n)
			}
		}
		return m, nil
	}
	upMid, err := mids(secUpMid, up.NumArcs(), "up mids")
	if err != nil {
		return nil, err
	}
	downMid, err := mids(secDownMid, down.NumArcs(), "down mids")
	if err != nil {
		return nil, err
	}
	downInMid, err := mids(secDownInMid, downIn.NumArcs(), "down-in mids")
	if err != nil {
		return nil, err
	}

	toEngine, err := i32s(secToEngine, n, "toEngine")
	if err != nil {
		return nil, err
	}
	toOrig, err := i32s(secToOrig, n, "toOrig")
	if err != nil {
		return nil, err
	}
	wantOrder := 0
	if explicit {
		wantOrder = n
	}
	order, err := i32s(secOrder, wantOrder, "order")
	if err != nil {
		return nil, err
	}
	pos, err := i32s(secPos, wantOrder, "pos")
	if err != nil {
		return nil, err
	}

	var levelRanges [][2]int32
	{
		s := secs[secLevelRanges]
		if s.len%8 != 0 || s.len/8 > int64(n)+1 {
			return nil, fmt.Errorf("snapshot: level ranges section has invalid length %d", s.len)
		}
		if s.len > 0 {
			levelRanges = unsafe.Slice((*[2]int32)(unsafe.Pointer(&data[s.off])), s.len/8)
		} else if mode != core.SweepRankOrder && n > 0 {
			return nil, fmt.Errorf("snapshot: %v mode without level ranges", mode)
		}
	}

	var packed *graph.Packed
	var packedz *graph.PackedZ
	switch {
	case flags&flagPacked != 0:
		stream := secs[secPackedStream]
		if stream.len%4 != 0 || stream.len/4 >= maxDim {
			return nil, fmt.Errorf("snapshot: packed stream section has odd length %d", stream.len)
		}
		var words []uint32
		if stream.len > 0 {
			words = unsafe.Slice((*uint32)(unsafe.Pointer(&data[stream.off])), stream.len/4)
		}
		blocks, err := intsAt(secPackedBlocks, n+1, "packed blocks")
		if err != nil {
			return nil, err
		}
		packed, err = graph.PackedFromParts(words, blocks, n, downIn.NumArcs(), explicit)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	case flags&flagPackedZ != 0:
		stream := secs[secPackedZStream]
		var bytes []byte
		if stream.len > 0 {
			bytes = data[stream.off : stream.off+stream.len]
		}
		blocks, err := intsAt(secPackedZBlocks, n+1, "compressed blocks")
		if err != nil {
			return nil, err
		}
		packedz, err = graph.PackedZFromParts(bytes, blocks, n, downIn.NumArcs(), explicit)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	default:
		if secs[secPackedStream].len != 0 || secs[secPackedZStream].len != 0 {
			return nil, fmt.Errorf("snapshot: stream sections present without a stream flag")
		}
	}

	chunkStart, err := i32sAny(secChunkStart, "chunk starts")
	if err != nil {
		return nil, err
	}
	numChunks := len(chunkStart) - 1
	chunkDep, err := i32s(secChunkDep, numChunks, "chunk deps")
	if err != nil {
		return nil, err
	}

	h := &ch.Hierarchy{
		G:            hg,
		Rank:         rank,
		Level:        level,
		Up:           up,
		Down:         down,
		DownIn:       downIn,
		UpMid:        upMid,
		DownMid:      downMid,
		DownInMid:    downInMid,
		NumShortcuts: int(shortcuts),
		MaxLevel:     int32(maxLevel),
		MetricEpoch:  metricEpoch,
		MetricName:   name,
	}
	return &Snapshot{
		Parts: core.EngineParts{
			Mode:        mode,
			H:           h,
			ToEngine:    toEngine,
			ToOrig:      toOrig,
			Order:       order,
			Pos:         pos,
			LevelRanges: levelRanges,
			Packed:      packed,
			PackedZ:     packedz,
			ChunkStart:  chunkStart,
			ChunkDep:    chunkDep,
			ForkJoin:    flags&flagForkJoin != 0,
		},
		Orig: orig,
		Size: int64(len(data)),
	}, nil
}

func checkPermutation(p []int32, n int, what string) error {
	if len(p) != n {
		return fmt.Errorf("snapshot: %s has %d entries, want %d", what, len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("snapshot: %s is not a permutation at %d", what, i)
		}
		seen[v] = true
	}
	return nil
}
