//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mapping owns one PROT_READ, MAP_SHARED view of a snapshot file. The
// kernel shares the backing pages across every process mapping the same
// file, which is the whole point: N shard servers hold one physical
// copy, and a cold start faults pages in instead of rebuilding arrays.
//
// The mapping is unmapped by its finalizer, never explicitly: the
// engine's shared state holds a reference for as long as any engine,
// clone, or sibling over the snapshot exists, so the aliased arrays can
// never outlive their pages.
type mapping struct {
	data []byte
}

// bytes returns the mapped region.
//
//phast:readonly
func (m *mapping) bytes() []byte { return m.data }

// openMapping maps path read-only and shared. The second result reports
// that the bytes are a true mmap (page-cache shared), not a heap copy.
func openMapping(path string) (*mapping, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, false, fmt.Errorf("snapshot: %s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("snapshot: %s is too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: mmap %s: %w", path, err)
	}
	m := &mapping{data: data}
	runtime.SetFinalizer(m, func(m *mapping) {
		_ = syscall.Munmap(m.data)
		m.data = nil
	})
	return m, true, nil
}
