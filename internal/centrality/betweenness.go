package centrality

import (
	"math/rand"
	"sort"

	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// BetweennessDijkstra computes betweenness centrality contributions of
// the given sources with Brandes' algorithm [28] over Dijkstra searches:
// c_B(v) = Σ_{s≠v≠t} σ_st(v)/σ_st restricted to s in sources. With
// sources = all vertices it is exact (including graphs with non-unique
// shortest paths). It is the baseline PHAST replaces. Arc lengths must
// be strictly positive (zero-length arcs would break the distance-order
// path counting).
func BetweennessDijkstra(g *graph.Graph, sources []int32) []float64 {
	n := g.NumVertices()
	cb := make([]float64, n)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	order := make([]int32, 0, n)
	for _, s := range sources {
		d.Run(s)
		order = order[:0]
		for v := int32(0); v < int32(n); v++ {
			sigma[v] = 0
			delta[v] = 0
			preds[v] = preds[v][:0]
			if d.Dist(v) != graph.Inf {
				order = append(order, v)
			}
		}
		sigma[s] = 1
		// Count shortest paths along the shortest-path DAG in distance
		// order; predecessors are collected in the same pass.
		sort.Slice(order, func(i, j int) bool { return d.Dist(order[i]) < d.Dist(order[j]) })
		for _, v := range order {
			dv := d.Dist(v)
			for _, a := range g.Arcs(v) {
				if graph.AddSat(dv, a.Weight) == d.Dist(a.Head) {
					sigma[a.Head] += sigma[v]
					preds[a.Head] = append(preds[a.Head], v)
				}
			}
		}
		// Dependency accumulation in reverse distance order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	return cb
}

// BetweennessPHAST computes the same contributions with PHAST trees.
// When shortest paths are unique (σ = 1 everywhere, typical for road
// networks with jittered lengths) the shortest-path DAG is a tree and
// Brandes' accumulation needs only the parent pointers the linear sweep
// already produces, so each source costs one PHAST tree plus a linear
// pass — the speedup claimed in Section VII-B.c. With ties the result is
// the centrality of the canonical tree paths (an approximation).
func BetweennessPHAST(g *graph.Graph, e *core.Engine, sources []int32) []float64 {
	n := g.NumVertices()
	cb := make([]float64, n)
	delta := make([]float64, n)
	parents := make([]int32, n)
	order := make([]int32, 0, n)
	for _, s := range sources {
		e.Tree(s)
		e.GTreeParents(parents)
		order = order[:0]
		for v := int32(0); v < int32(n); v++ {
			delta[v] = 0
			if e.Dist(v) != graph.Inf {
				order = append(order, v)
			}
		}
		sort.Slice(order, func(i, j int) bool { return e.Dist(order[i]) > e.Dist(order[j]) })
		for _, w := range order {
			if p := parents[w]; p >= 0 {
				delta[p] += 1 + delta[w]
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	return cb
}

// BetweennessApprox estimates full betweenness centrality from a uniform
// sample of pivot sources, scaling each pivot's contribution by n/k
// (the Brandes–Pich estimator the paper's Section VII-B.c mentions PHAST
// "could also be helpful for accelerating"). With k = n it degenerates
// to the exact tree-based computation.
func BetweennessApprox(g *graph.Graph, e *core.Engine, samples int, seed int64) []float64 {
	n := g.NumVertices()
	if samples > n {
		samples = n
	}
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pivots := rng.Perm(n)[:samples]
	sources := make([]int32, samples)
	for i, p := range pivots {
		sources[i] = int32(p)
	}
	cb := BetweennessPHAST(g, e, sources)
	scale := float64(n) / float64(samples)
	for v := range cb {
		cb[v] *= scale
	}
	return cb
}

// UniqueShortestPaths reports whether every shortest path from every
// given source is unique — the condition under which BetweennessPHAST
// and Reaches are exact. A vertex with two tight incoming arcs (both
// satisfying d(u) + l(u,v) = d(v)) has at least two shortest paths. It
// runs one Dijkstra per source.
func UniqueShortestPaths(g *graph.Graph, sources []int32) bool {
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rev := g.Transpose()
	n := g.NumVertices()
	for _, s := range sources {
		d.Run(s)
		for v := int32(0); v < int32(n); v++ {
			if d.Dist(v) == graph.Inf || v == s {
				continue
			}
			tight := 0
			for _, a := range rev.Arcs(v) {
				if du := d.Dist(a.Head); du != graph.Inf && graph.AddSat(du, a.Weight) == d.Dist(v) {
					tight++
					if tight > 1 {
						return false
					}
				}
			}
		}
	}
	return true
}
