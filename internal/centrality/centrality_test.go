package centrality

import (
	"math"
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/sssp"
)

func testEngine(t *testing.T, g *graph.Graph) *core.Engine {
	t.Helper()
	h := ch.Build(g, ch.Options{Workers: 1})
	e, err := core.NewEngine(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// uniqueNet returns a small road network verified to have unique
// shortest paths from every vertex.
func uniqueNet(t *testing.T) *graph.Graph {
	t.Helper()
	for seed := int64(1); seed < 20; seed++ {
		net, err := roadnet.Generate(roadnet.Params{Width: 10, Height: 9, Seed: seed, JitterFrac: 0.45})
		if err != nil {
			t.Fatal(err)
		}
		g := net.Graph
		all := make([]int32, g.NumVertices())
		for i := range all {
			all[i] = int32(i)
		}
		if UniqueShortestPaths(g, all) {
			return g
		}
	}
	t.Fatal("no seed produced unique shortest paths")
	return nil
}

// apspOracle computes the full distance matrix with Dijkstra.
func apspOracle(g *graph.Graph) [][]uint32 {
	n := g.NumVertices()
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	out := make([][]uint32, n)
	for s := 0; s < n; s++ {
		d.Run(int32(s))
		out[s] = d.Distances()
	}
	return out
}

func TestReachesMatchesBruteForce(t *testing.T) {
	g := uniqueNet(t)
	n := g.NumVertices()
	e := testEngine(t, g)
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	got := Reaches(g, e, all)

	D := apspOracle(g)
	want := make([]uint32, n)
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if D[s][tt] == graph.Inf {
				continue
			}
			for v := 0; v < n; v++ {
				if D[s][v] == graph.Inf || D[v][tt] == graph.Inf {
					continue
				}
				if D[s][v]+D[v][tt] == D[s][tt] {
					r := D[s][v]
					if D[v][tt] < r {
						r = D[v][tt]
					}
					if r > want[v] {
						want[v] = r
					}
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if got[v] != want[v] {
			t.Fatalf("reach(%d)=%d, want %d", v, got[v], want[v])
		}
	}
}

func TestReachesSampledIsLowerBound(t *testing.T) {
	g := uniqueNet(t)
	e := testEngine(t, g)
	n := g.NumVertices()
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	full := Reaches(g, e, all)
	sampled := Reaches(g, e, all[:n/4])
	for v := range full {
		if sampled[v] > full[v] {
			t.Fatalf("sampled reach %d exceeds exact %d at %d", sampled[v], full[v], v)
		}
	}
}

// betweennessOracle enumerates σ_st and σ_st(v) directly.
func betweennessOracle(g *graph.Graph, sources []int32) []float64 {
	n := g.NumVertices()
	D := apspOracle(g)
	// sigma[s][v]: number of shortest s→v paths.
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		sig := make([]float64, n)
		sig[s] = 1
		// relax in distance order
		order := make([]int32, 0, n)
		for v := 0; v < n; v++ {
			if D[s][v] != graph.Inf {
				order = append(order, int32(v))
			}
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if D[s][order[j]] < D[s][order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, v := range order {
			for _, a := range g.Arcs(v) {
				if graph.AddSat(D[s][v], a.Weight) == D[s][a.Head] {
					sig[a.Head] += sig[v]
				}
			}
		}
		sigma[s] = sig
	}
	cb := make([]float64, n)
	for _, s := range sources {
		for tt := 0; tt < n; tt++ {
			if int32(tt) == s || D[s][tt] == graph.Inf {
				continue
			}
			for v := 0; v < n; v++ {
				if int32(v) == s || v == tt {
					continue
				}
				if D[s][v] != graph.Inf && D[v][tt] != graph.Inf && D[s][v]+D[v][tt] == D[s][tt] {
					cb[v] += sigma[s][v] * sigma[v][tt] / sigma[s][tt]
				}
			}
		}
	}
	return cb
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestBetweennessDijkstraMatchesOracleWithTies(t *testing.T) {
	// Diamond with two equal shortest paths 0→3: σ=2 through both middles.
	g, err := graph.FromArcs(4, [][3]int64{
		{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := BetweennessDijkstra(g, []int32{0, 1, 2, 3})
	want := betweennessOracle(g, []int32{0, 1, 2, 3})
	for v := range want {
		if !close(got[v], want[v]) {
			t.Fatalf("cb(%d)=%f, want %f", v, got[v], want[v])
		}
	}
	// Each middle vertex carries half of the single s-t pair (0,3).
	if !close(got[1], 0.5) || !close(got[2], 0.5) {
		t.Fatalf("diamond middles: %f %f, want 0.5 each", got[1], got[2])
	}
}

func TestBetweennessDijkstraMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(1+rng.Intn(6)))
		}
		g := b.BuildDeduped()
		sources := []int32{0, int32(n / 2)}
		got := BetweennessDijkstra(g, sources)
		want := betweennessOracle(g, sources)
		for v := range want {
			if !close(got[v], want[v]) {
				t.Fatalf("trial %d: cb(%d)=%f, want %f", trial, v, got[v], want[v])
			}
		}
	}
}

func TestBetweennessPHASTMatchesDijkstraOnUniquePaths(t *testing.T) {
	g := uniqueNet(t)
	e := testEngine(t, g)
	n := g.NumVertices()
	sources := make([]int32, 0, n)
	for i := 0; i < n; i += 3 {
		sources = append(sources, int32(i))
	}
	want := BetweennessDijkstra(g, sources)
	got := BetweennessPHAST(g, e, sources)
	for v := range want {
		if !close(got[v], want[v]) {
			t.Fatalf("cb(%d)=%f, want %f", v, got[v], want[v])
		}
	}
}

func TestBetweennessApproxFullSampleIsExact(t *testing.T) {
	g := uniqueNet(t)
	e := testEngine(t, g)
	n := g.NumVertices()
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	exact := BetweennessPHAST(g, e, all)
	approx := BetweennessApprox(g, e, n, 1)
	for v := range exact {
		if !close(approx[v], exact[v]) {
			t.Fatalf("full-sample approx differs at %d: %f vs %f", v, approx[v], exact[v])
		}
	}
}

func TestBetweennessApproxIsUnbiasedOnAverage(t *testing.T) {
	g := uniqueNet(t)
	e := testEngine(t, g)
	n := g.NumVertices()
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	exact := BetweennessPHAST(g, e, all)
	var exactSum float64
	for _, c := range exact {
		exactSum += c
	}
	// Average several sampled estimates of the total centrality mass;
	// the estimator is unbiased, so the mean should land near the truth.
	var estSum float64
	const rounds = 8
	for seed := int64(0); seed < rounds; seed++ {
		approx := BetweennessApprox(g, e, n/4, seed)
		for _, c := range approx {
			estSum += c
		}
	}
	estSum /= rounds
	if estSum < 0.7*exactSum || estSum > 1.3*exactSum {
		t.Fatalf("approx mass %f too far from exact %f", estSum, exactSum)
	}
}

func TestBetweennessApproxClamping(t *testing.T) {
	g := uniqueNet(t)
	e := testEngine(t, g)
	if got := BetweennessApprox(g, e, 0, 1); len(got) != g.NumVertices() {
		t.Fatal("samples<1 not clamped")
	}
	if got := BetweennessApprox(g, e, 10*g.NumVertices(), 1); len(got) != g.NumVertices() {
		t.Fatal("samples>n not clamped")
	}
}

func TestUniqueShortestPathsDetectsTies(t *testing.T) {
	diamond, err := graph.FromArcs(4, [][3]int64{
		{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if UniqueShortestPaths(diamond, []int32{0}) {
		t.Fatal("diamond has two shortest 0→3 paths")
	}
	path, err := graph.FromArcs(3, [][3]int64{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !UniqueShortestPaths(path, []int32{0, 1, 2}) {
		t.Fatal("simple path flagged as ambiguous")
	}
}
