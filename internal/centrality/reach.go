// Package centrality implements the shortest-path centrality measures of
// Section VII-B.c — exact vertex reach [13] and betweenness [15], [16]
// — both of which reduce to building (up to) n shortest-path trees and
// are therefore the paper's flagship PHAST applications.
package centrality

import (
	"sort"

	"phast/internal/core"
	"phast/internal/graph"
)

// Reaches computes, for each vertex v, max over the given sources s of
// min(dist(s,v), height_s(v)), where height_s(v) is the longest distance
// from v to a descendant in the shortest-path tree from s. With sources
// = all vertices and unique shortest paths this is the exact reach of
// [13]; with sampled sources it is the standard lower bound. The engine
// provides the trees; results are indexed by original vertex ID.
func Reaches(g *graph.Graph, e *core.Engine, sources []int32) []uint32 {
	n := g.NumVertices()
	reach := make([]uint32, n)
	height := make([]uint32, n)
	parents := make([]int32, n)
	order := make([]int32, 0, n)
	for _, s := range sources {
		e.Tree(s)
		e.GTreeParents(parents)
		// Children must be folded into parents before the parent is read,
		// i.e. in order of decreasing depth (ties are safe with positive
		// arc lengths: equal-depth vertices are never parent and child).
		order = order[:0]
		for v := int32(0); v < int32(n); v++ {
			height[v] = 0
			if e.Dist(v) != graph.Inf {
				order = append(order, v)
			}
		}
		sort.Slice(order, func(i, j int) bool {
			return e.Dist(order[i]) > e.Dist(order[j])
		})
		for _, v := range order {
			if p := parents[v]; p >= 0 {
				if h := height[v] + (e.Dist(v) - e.Dist(p)); h > height[p] {
					height[p] = h
				}
			}
		}
		for _, v := range order {
			r := e.Dist(v)
			if height[v] < r {
				r = height[v]
			}
			if r > reach[v] {
				reach[v] = r
			}
		}
	}
	return reach
}
