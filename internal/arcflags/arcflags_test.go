package arcflags

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/graph"
	"phast/internal/partition"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/simt"
	"phast/internal/sssp"
)

func testNet(t *testing.T) *graph.Graph {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Params{Width: 22, Height: 18, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph
}

func computeFlags(t *testing.T, g *graph.Graph, k int, tree ReverseTreeFunc) (*ArcFlags, []int32) {
	t.Helper()
	cells, err := partition.Cells(g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compute(g, cells, k, tree)
	if err != nil {
		t.Fatal(err)
	}
	return f, cells
}

func checkExactQueries(t *testing.T, g *graph.Graph, f *ArcFlags, seed int64, queries int) {
	t.Helper()
	q := NewQuery(f)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	for i := 0; i < queries; i++ {
		s, tt := int32(rng.Intn(n)), int32(rng.Intn(n))
		got := q.Distance(s, tt)
		d.Run(s)
		if want := d.Dist(tt); got != want {
			t.Fatalf("query %d: flags(%d,%d)=%d, want %d", i, s, tt, got, want)
		}
	}
}

func TestFlagsExactWithDijkstraTrees(t *testing.T) {
	g := testNet(t)
	f, _ := computeFlags(t, g, 6, DijkstraReverseTrees(g))
	checkExactQueries(t, g, f, 1, 40)
}

func TestFlagsExactWithPHASTTrees(t *testing.T) {
	g := testNet(t)
	rev, err := NewReverseEngine(g, ch.Options{Workers: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := computeFlags(t, g, 6, PHASTReverseTrees(rev))
	checkExactQueries(t, g, f, 2, 40)
}

func TestFlagsExactWithGPHASTTrees(t *testing.T) {
	g := testNet(t)
	rev, err := NewReverseEngine(g, ch.Options{Workers: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grev, err := gphast.NewEngine(rev, simt.NewDevice(simt.GTX580()), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := computeFlags(t, g, 4, GPHASTReverseTrees(grev, g.NumVertices()))
	checkExactQueries(t, g, f, 3, 25)
}

func TestPHASTAndDijkstraTreesGiveSameFlags(t *testing.T) {
	g := testNet(t)
	rev, err := NewReverseEngine(g, ch.Options{Workers: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := computeFlags(t, g, 5, DijkstraReverseTrees(g))
	fp, _ := computeFlags(t, g, 5, PHASTReverseTrees(rev))
	for arc := 0; arc < g.NumArcs(); arc++ {
		for c := int32(0); c < 5; c++ {
			if fd.Flag(arc, c) != fp.Flag(arc, c) {
				t.Fatalf("flag (%d,%d) differs between tree providers", arc, c)
			}
		}
	}
}

func TestFlagsPruneSearch(t *testing.T) {
	g := testNet(t)
	f, cells := computeFlags(t, g, 8, DijkstraReverseTrees(g))
	if d := f.FlagDensity(); d <= 0 || d >= 1 {
		t.Fatalf("flag density %f implausible", d)
	}
	q := NewQuery(f)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	// A cross-network query should scan far fewer vertices than Dijkstra.
	var s, tt int32 = -1, -1
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if cells[v] == 0 && s < 0 {
			s = v
		}
		if cells[v] == 7 && tt < 0 {
			tt = v
		}
	}
	if s < 0 || tt < 0 {
		t.Skip("partition missing expected cells")
	}
	got := q.Distance(s, tt)
	d.Run(s)
	if got != d.Dist(tt) {
		t.Fatalf("distance mismatch")
	}
	if q.Scanned() >= d.Scanned() {
		t.Fatalf("flags scanned %d vertices, Dijkstra %d — no pruning", q.Scanned(), d.Scanned())
	}
}

func TestComputeValidation(t *testing.T) {
	g := testNet(t)
	if _, err := Compute(g, make([]int32, 3), 2, DijkstraReverseTrees(g)); err == nil {
		t.Fatal("wrong cells length accepted")
	}
	bad := make([]int32, g.NumVertices())
	bad[0] = 99
	if _, err := Compute(g, bad, 2, DijkstraReverseTrees(g)); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
}

func TestManyCellsBitsetWords(t *testing.T) {
	// k>64 exercises multi-word bitsets.
	g := testNet(t)
	f, _ := computeFlags(t, g, 70, DijkstraReverseTrees(g))
	checkExactQueries(t, g, f, 4, 15)
	if f.K() != 70 {
		t.Fatalf("K=%d", f.K())
	}
}

func TestUnreachableTarget(t *testing.T) {
	// Two islands: queries across must return Inf.
	g, err := graph.FromArcs(4, [][3]int64{{0, 1, 1}, {1, 0, 1}, {2, 3, 1}, {3, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cells := []int32{0, 0, 1, 1}
	f, err := Compute(g, cells, 2, DijkstraReverseTrees(g))
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(f)
	if got := q.Distance(0, 3); got != graph.Inf {
		t.Fatalf("distance across islands = %d, want Inf", got)
	}
	if got := q.Distance(0, 1); got != 1 {
		t.Fatalf("intra-island distance = %d, want 1", got)
	}
}
