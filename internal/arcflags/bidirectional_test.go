package arcflags

import (
	"math/rand"
	"testing"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/partition"
	"phast/internal/pq"
	"phast/internal/roadnet"
	"phast/internal/sssp"
)

func buildBidirectional(t *testing.T, g *graph.Graph, k int) (*Bidirectional, []int32) {
	t.Helper()
	cells, err := partition.Cells(g, k, 2)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := NewReverseEngine(g, ch.Options{Workers: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hFwd := ch.Build(g, ch.Options{Workers: 1})
	fwdEng, err := core.NewEngine(hFwd, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bi, err := ComputeBidirectional(g, cells, k,
		PHASTReverseTrees(rev), PHASTForwardTrees(fwdEng))
	if err != nil {
		t.Fatal(err)
	}
	return bi, cells
}

func TestBidirectionalExact(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 20, Height: 18, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	bi, _ := buildBidirectional(t, g, 6)
	q := NewBiQuery(bi)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		s, tt := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
		got := q.Distance(s, tt)
		d.Run(s)
		if want := d.Dist(tt); got != want {
			t.Fatalf("bidi flags (%d,%d)=%d, want %d", s, tt, got, want)
		}
	}
}

func TestBidirectionalExactOneWay(t *testing.T) {
	// Asymmetric graphs are the dangerous case for backward flags.
	net, err := roadnet.Generate(roadnet.Params{Width: 16, Height: 14, Seed: 72, OneWayProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	bi, _ := buildBidirectional(t, g, 4)
	q := NewBiQuery(bi)
	d := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		s, tt := int32(rng.Intn(g.NumVertices())), int32(rng.Intn(g.NumVertices()))
		got := q.Distance(s, tt)
		d.Run(s)
		if want := d.Dist(tt); got != want {
			t.Fatalf("one-way bidi flags (%d,%d)=%d, want %d", s, tt, got, want)
		}
	}
}

func TestBidirectionalPrunesMoreThanUnidirectional(t *testing.T) {
	net, err := roadnet.Generate(roadnet.Params{Width: 26, Height: 24, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	bi, cells := buildBidirectional(t, g, 8)
	uni := NewQuery(bi.Forward())
	bq := NewBiQuery(bi)
	// Long cross-network queries.
	var s, tt int32 = -1, -1
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if cells[v] == 0 && s < 0 {
			s = v
		}
		if cells[v] == 7 && tt < 0 {
			tt = v
		}
	}
	if s < 0 || tt < 0 {
		t.Skip("cells missing")
	}
	var uniScanned, biScanned int
	for trial := 0; trial < 5; trial++ {
		if got, want := bq.Distance(s, tt), uni.Distance(s, tt); got != want {
			t.Fatalf("bi/uni disagree: %d vs %d", got, want)
		}
		biScanned += bq.Scanned()
		uniScanned += uni.Scanned()
	}
	if biScanned >= uniScanned {
		t.Fatalf("bidirectional scanned %d, unidirectional %d — no extra pruning", biScanned, uniScanned)
	}
}

func TestBidirectionalSameVertexAndUnreachable(t *testing.T) {
	g, err := graph.FromArcs(4, [][3]int64{{0, 1, 1}, {1, 0, 1}, {2, 3, 1}, {3, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cells := []int32{0, 0, 1, 1}
	bi, err := ComputeBidirectional(g, cells, 2,
		DijkstraReverseTrees(g), DijkstraReverseTrees(g.Transpose()))
	if err != nil {
		t.Fatal(err)
	}
	q := NewBiQuery(bi)
	if d := q.Distance(2, 2); d != 0 {
		t.Fatalf("d(2,2)=%d", d)
	}
	if d := q.Distance(0, 3); d != graph.Inf {
		t.Fatalf("cross-island d=%d, want Inf", d)
	}
	if d := q.Distance(0, 1); d != 1 {
		t.Fatalf("d(0,1)=%d, want 1", d)
	}
}
