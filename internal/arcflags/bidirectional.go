package arcflags

import (
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/pq"
)

// Bidirectional holds the two flag sets of the bidirectional arc-flags
// query the paper describes ("this approach can easily be made
// bidirectional"): forward flags on G pruned by the target's cell, and
// backward flags on the transpose pruned by the source's cell. The
// backward flags mark arcs lying on shortest paths *from* a cell, so
// their boundary trees are ordinary forward shortest-path trees — which
// PHAST provides natively.
type Bidirectional struct {
	fwd *ArcFlags
	bwd *ArcFlags // over g.Transpose(), same cells
}

// PHASTForwardTrees adapts a forward PHAST engine over G into the
// ReverseTreeFunc that flagging the transpose of G expects: distances to
// b in G^T are distances from b in G.
func PHASTForwardTrees(fwdEngine *core.Engine) ReverseTreeFunc {
	return func(b int32, dist []uint32) {
		fwdEngine.Tree(b)
		fwdEngine.DistancesInto(dist)
	}
}

// ComputeBidirectional builds both flag sets. reverseTree provides
// distances *to* a root in g (as in Compute); forwardTree provides
// distances *from* a root in g (PHASTForwardTrees or a Dijkstra
// equivalent).
func ComputeBidirectional(g *graph.Graph, cells []int32, k int,
	reverseTree, forwardTree ReverseTreeFunc) (*Bidirectional, error) {
	fwd, err := Compute(g, cells, k, reverseTree)
	if err != nil {
		return nil, err
	}
	bwd, err := Compute(g.Transpose(), cells, k, forwardTree)
	if err != nil {
		return nil, err
	}
	return &Bidirectional{fwd: fwd, bwd: bwd}, nil
}

// Forward exposes the forward flag set (for inspection/testing).
func (b *Bidirectional) Forward() *ArcFlags { return b.fwd }

// Backward exposes the transpose flag set.
func (b *Bidirectional) Backward() *ArcFlags { return b.bwd }

// BiQuery is a reusable bidirectional flag-pruned Dijkstra: the forward
// search relaxes only arcs flagged for the target's cell, the backward
// search only transpose arcs flagged for the source's cell, and both
// stop once their frontier minimum reaches the best meeting value µ.
type BiQuery struct {
	b       *Bidirectional
	fs, bs  *prunedSearch
	scanned int
}

// NewBiQuery creates a solver over the bidirectional flags.
func NewBiQuery(b *Bidirectional) *BiQuery {
	return &BiQuery{
		b:  b,
		fs: newPrunedSearch(b.fwd),
		bs: newPrunedSearch(b.bwd),
	}
}

// Distance returns the exact s→t distance. Both searches advance by
// smaller frontier minimum and stop together once min_f + min_b ≥ µ —
// at that point no undiscovered meeting vertex can improve µ, since a
// path through it would cost at least the sum of the two minima.
func (q *BiQuery) Distance(s, t int32) uint32 {
	q.fs.init(s, q.b.fwd.cells[t])
	q.bs.init(t, q.b.bwd.cells[s])
	mu := graph.Inf
	for {
		mf, mb := q.fs.minKey(), q.bs.minKey()
		if graph.AddSat(mf, mb) >= mu {
			break
		}
		side, other := q.fs, q.bs
		if mb < mf {
			side, other = q.bs, q.fs
		}
		v, dv := side.settleNext()
		if od := other.dist(v); od != graph.Inf {
			if m := graph.AddSat(dv, od); m < mu {
				mu = m
			}
		}
	}
	q.scanned = q.fs.scanned + q.bs.scanned
	return mu
}

// Scanned returns the total vertices both searches scanned in the last
// Distance call.
func (q *BiQuery) Scanned() int { return q.scanned }

// prunedSearch is one direction of the bidirectional query: Dijkstra
// over one flag set, restricted to one cell's flags.
type prunedSearch struct {
	f       *ArcFlags
	q       *pq.BinaryHeap
	distv   []uint32
	stamp   []int32
	version int32
	cell    int32
	stopped bool
	scanned int
}

func newPrunedSearch(f *ArcFlags) *prunedSearch {
	n := f.g.NumVertices()
	return &prunedSearch{
		f:     f,
		q:     pq.NewBinaryHeap(n),
		distv: make([]uint32, n),
		stamp: make([]int32, n),
	}
}

func (s *prunedSearch) init(root, cell int32) {
	s.version++
	s.q.Reset()
	s.cell = cell
	s.stopped = false
	s.scanned = 0
	s.distv[root] = 0
	s.stamp[root] = s.version
	s.q.Insert(root, 0)
}

func (s *prunedSearch) done() bool { return s.stopped || s.q.Empty() }

func (s *prunedSearch) minKey() uint32 {
	if s.q.Empty() {
		return graph.Inf
	}
	v, k := s.q.ExtractMin()
	s.q.Insert(v, k)
	return k
}

func (s *prunedSearch) settleNext() (int32, uint32) {
	v, dv := s.q.ExtractMin()
	s.scanned++
	first := s.f.g.FirstOut()
	arcs := s.f.g.ArcList()
	for i := first[v]; i < first[v+1]; i++ {
		if !s.f.Flag(int(i), s.cell) {
			continue
		}
		a := arcs[i]
		nd := graph.AddSat(dv, a.Weight)
		if s.stamp[a.Head] != s.version || nd < s.distv[a.Head] {
			s.distv[a.Head] = nd
			s.stamp[a.Head] = s.version
			s.q.Update(a.Head, nd)
		}
	}
	return v, dv
}

func (s *prunedSearch) dist(v int32) uint32 {
	if s.stamp[v] != s.version {
		return graph.Inf
	}
	return s.distv[v]
}
