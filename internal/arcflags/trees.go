package arcflags

import (
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/gphast"
	"phast/internal/graph"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// NewReverseEngine builds a PHAST engine over the transpose of g, the
// input PHASTReverseTrees expects. The CH preprocessing of the reverse
// graph is independent of the forward hierarchy.
func NewReverseEngine(g *graph.Graph, chOpt ch.Options, coreOpt core.Options) (*core.Engine, error) {
	h := ch.Build(g.Transpose(), chOpt)
	return core.NewEngine(h, coreOpt)
}

// DijkstraReverseTrees returns a ReverseTreeFunc running plain Dijkstra
// on the transpose of g — the slow baseline the paper replaces (about
// 10.5 hours of preprocessing on four cores for Europe).
func DijkstraReverseTrees(g *graph.Graph) ReverseTreeFunc {
	d := sssp.NewDijkstra(g.Transpose(), pq.KindDial)
	return func(b int32, dist []uint32) {
		d.Run(b)
		d.CopyDistances(dist)
	}
}

// PHASTReverseTrees returns a ReverseTreeFunc backed by a PHAST engine.
// revEngine must have been built over the *transpose* of the flagged
// graph; passing a forward engine silently computes wrong flags, so
// callers normally obtain one from NewReverseEngine.
func PHASTReverseTrees(revEngine *core.Engine) ReverseTreeFunc {
	return func(b int32, dist []uint32) {
		revEngine.Tree(b)
		revEngine.DistancesInto(dist)
	}
}

// GPHASTReverseTrees returns a ReverseTreeFunc running the sweep on the
// simulated GPU (the configuration that reduces flag preprocessing to
// under 3 minutes in the paper). revEngine must be built over the
// transpose of the flagged graph.
func GPHASTReverseTrees(revEngine *gphast.Engine, n int) ReverseTreeFunc {
	buf := make([]uint32, n)
	return func(b int32, dist []uint32) {
		revEngine.Tree(b)
		revEngine.CopyDistances(0, buf) // engine-ID indexed, covers all vertices
		for ev := int32(0); int(ev) < len(buf); ev++ {
			dist[revEngine.OrigID(ev)] = buf[ev]
		}
	}
}
