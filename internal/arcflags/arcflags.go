// Package arcflags implements the arc-flags point-to-point acceleration
// of Section VII-B.b: preprocessing attaches to every arc a bitset with
// one flag per partition cell — flag C is set when the arc begins some
// shortest path to a vertex of C — and queries run Dijkstra relaxing
// only arcs whose flag for the target's cell is set.
//
// The expensive part of preprocessing is one reverse shortest-path tree
// per boundary vertex; the paper's headline application replaces
// Dijkstra with (G)PHAST here, cutting flag computation from hours to
// minutes. The tree computation is injected as a callback so both
// implementations share this code and can be compared by the harness.
package arcflags

import (
	"fmt"

	"phast/internal/graph"
	"phast/internal/partition"
	"phast/internal/pq"
)

// ReverseTreeFunc computes, for a tree root b, the distances *to* b from
// every vertex (a shortest-path tree in the reverse graph), writing them
// into dist indexed by original vertex ID.
type ReverseTreeFunc func(b int32, dist []uint32)

// ArcFlags holds the preprocessed flags.
type ArcFlags struct {
	g     *graph.Graph
	cells []int32
	k     int
	words int      // bitset words per arc
	bits  []uint64 // len = m*words; arc order matches g.ArcList()
	// Boundary counts, for reporting.
	NumBoundary int
}

// Compute builds arc flags for g under the given partition, using
// reverseTree to obtain one reverse shortest-path tree per boundary
// vertex.
func Compute(g *graph.Graph, cells []int32, k int, reverseTree ReverseTreeFunc) (*ArcFlags, error) {
	n := g.NumVertices()
	if len(cells) != n {
		return nil, fmt.Errorf("arcflags: cells has length %d, want %d", len(cells), n)
	}
	for v, c := range cells {
		if c < 0 || int(c) >= k {
			return nil, fmt.Errorf("arcflags: vertex %d in cell %d outside [0,%d)", v, c, k)
		}
	}
	m := g.NumArcs()
	words := (k + 63) / 64
	f := &ArcFlags{g: g, cells: cells, k: k, words: words, bits: make([]uint64, m*words)}

	// Intra-cell arcs always carry their own cell's flag: the suffix of a
	// shortest path after its last entry into the target cell stays
	// inside the cell.
	first := g.FirstOut()
	arcs := g.ArcList()
	for u := int32(0); u < int32(n); u++ {
		for i := first[u]; i < first[u+1]; i++ {
			if cells[arcs[i].Head] == cells[u] && cells[u] >= 0 {
				f.set(int(i), cells[u])
			}
		}
	}

	// One reverse tree per boundary vertex b of cell C: every arc (u,v)
	// with dist(u→b) = l(u,v) + dist(v→b) lies on a shortest path to b
	// and receives flag C.
	boundary := partition.Boundary(g, cells, k)
	dist := make([]uint32, n)
	for c, bs := range boundary {
		for _, b := range bs {
			f.NumBoundary++
			reverseTree(b, dist)
			for u := int32(0); u < int32(n); u++ {
				du := dist[u]
				if du == graph.Inf {
					continue
				}
				for i := first[u]; i < first[u+1]; i++ {
					a := arcs[i]
					if dv := dist[a.Head]; dv != graph.Inf && graph.AddSat(a.Weight, dv) == du {
						f.set(int(i), int32(c))
					}
				}
			}
		}
	}
	return f, nil
}

func (f *ArcFlags) set(arc int, cell int32) {
	f.bits[arc*f.words+int(cell>>6)] |= 1 << (uint(cell) & 63)
}

// Flag reports whether the arc at index arc (in g.ArcList() order)
// carries the flag of cell.
func (f *ArcFlags) Flag(arc int, cell int32) bool {
	return f.bits[arc*f.words+int(cell>>6)]&(1<<(uint(cell)&63)) != 0
}

// Cell returns the cell of vertex v.
func (f *ArcFlags) Cell(v int32) int32 { return f.cells[v] }

// K returns the number of cells.
func (f *ArcFlags) K() int { return f.k }

// FlagDensity returns the fraction of (arc, cell) pairs whose flag is
// set — a quality metric: lower is better pruning.
func (f *ArcFlags) FlagDensity() float64 {
	var set int
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.g.NumArcs()*f.k)
}

// Query is a reusable flag-pruned Dijkstra solver.
type Query struct {
	f       *ArcFlags
	q       pq.Queue
	dist    []uint32
	stamp   []int32
	version int32
	scanned int
}

// NewQuery creates a solver over the flags.
func NewQuery(f *ArcFlags) *Query {
	n := f.g.NumVertices()
	return &Query{
		f:     f,
		q:     pq.New(pq.KindBinaryHeap, n, graph.MaxArcWeight(f.g)),
		dist:  make([]uint32, n),
		stamp: make([]int32, n),
	}
}

// Distance returns the exact s→t distance, relaxing only arcs flagged
// for t's cell.
func (q *Query) Distance(s, t int32) uint32 {
	target := q.f.cells[t]
	first := q.f.g.FirstOut()
	arcs := q.f.g.ArcList()
	q.version++
	q.q.Reset()
	q.scanned = 0
	q.dist[s] = 0
	q.stamp[s] = q.version
	q.q.Insert(s, 0)
	for !q.q.Empty() {
		v, dv := q.q.ExtractMin()
		q.scanned++
		if v == t {
			return dv
		}
		for i := first[v]; i < first[v+1]; i++ {
			if !q.f.Flag(int(i), target) {
				continue
			}
			a := arcs[i]
			nd := graph.AddSat(dv, a.Weight)
			if q.stamp[a.Head] != q.version || nd < q.dist[a.Head] {
				q.dist[a.Head] = nd
				q.stamp[a.Head] = q.version
				q.q.Update(a.Head, nd)
			}
		}
	}
	return graph.Inf
}

// Scanned returns the number of vertices scanned by the last Distance
// call — the speedup metric versus plain Dijkstra.
func (q *Query) Scanned() int { return q.scanned }
