package arcflags

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phast/internal/graph"
	"phast/internal/partition"
	"phast/internal/pq"
	"phast/internal/sssp"
)

// flagInstance is a quick.Generator producing small random digraphs with
// partitions, so the exactness of flag-pruned queries is checked far off
// the road-network happy path.
type flagInstance struct {
	g     *graph.Graph
	cells []int32
	k     int
}

// Generate implements quick.Generator.
func (flagInstance) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(30)
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.MustAddArc(int32(rng.Intn(n)), int32(rng.Intn(n)), uint32(1+rng.Intn(20)))
	}
	g := b.Build()
	k := 1 + rng.Intn(4)
	if k > n {
		k = n
	}
	cells, err := partition.Cells(g, k, rng.Int63())
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(flagInstance{g: g, cells: cells, k: k})
}

// TestQuickFlagsExactOnRandomGraphs: flag-pruned distances equal
// Dijkstra distances for arbitrary graphs, partitions and query pairs —
// both the unidirectional and bidirectional variants.
func TestQuickFlagsExactOnRandomGraphs(t *testing.T) {
	prop := func(in flagInstance) bool {
		f, err := Compute(in.g, in.cells, in.k, DijkstraReverseTrees(in.g))
		if err != nil {
			return false
		}
		bi, err := ComputeBidirectional(in.g, in.cells, in.k,
			DijkstraReverseTrees(in.g), DijkstraReverseTrees(in.g.Transpose()))
		if err != nil {
			return false
		}
		uni := NewQuery(f)
		two := NewBiQuery(bi)
		d := sssp.NewDijkstra(in.g, pq.KindBinaryHeap)
		n := in.g.NumVertices()
		for q := 0; q < 8; q++ {
			s, tt := int32(q%n), int32((q*7+1)%n)
			d.Run(s)
			want := d.Dist(tt)
			if uni.Distance(s, tt) != want {
				t.Logf("uni (%d,%d) != %d", s, tt, want)
				return false
			}
			if two.Distance(s, tt) != want {
				t.Logf("bidi (%d,%d) != %d", s, tt, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlagsAreSupersetOfTreeArcs: every arc on some shortest path
// into a cell must carry that cell's flag (no false negatives — false
// positives only cost work, false negatives cost correctness).
func TestQuickFlagsAreSupersetOfTreeArcs(t *testing.T) {
	prop := func(in flagInstance) bool {
		f, err := Compute(in.g, in.cells, in.k, DijkstraReverseTrees(in.g))
		if err != nil {
			return false
		}
		d := sssp.NewDijkstra(in.g, pq.KindBinaryHeap)
		first := in.g.FirstOut()
		arcs := in.g.ArcList()
		n := in.g.NumVertices()
		for s := int32(0); s < int32(n); s++ {
			d.Run(s)
			for u := int32(0); u < int32(n); u++ {
				du := d.Dist(u)
				if du == graph.Inf {
					continue
				}
				for i := first[u]; i < first[u+1]; i++ {
					a := arcs[i]
					if graph.AddSat(du, a.Weight) != d.Dist(a.Head) {
						continue // not tight: not on a shortest path from s
					}
					// The arc starts a shortest path from u to a.Head, so
					// it must be flagged for a.Head's cell.
					if !f.Flag(int(i), in.cells[a.Head]) {
						t.Logf("tight arc (%d,%d) lacks flag of cell %d", u, a.Head, in.cells[a.Head])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
