package phast

import (
	"fmt"
	"io"
	"sync/atomic"

	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/invariant"
	"phast/internal/server"
)

// Options configures Preprocess. The zero value matches the paper's
// parameters.
type Options struct {
	// CHWorkers bounds the goroutines used during contraction-hierarchy
	// preprocessing (0 = GOMAXPROCS).
	CHWorkers int
	// SweepWorkers bounds the goroutines of TreeParallel (0 = GOMAXPROCS).
	SweepWorkers int
	// SweepMode overrides the sweep order; the default is the fully
	// reordered layout of Section IV-A. Exposed for experiments.
	SweepMode SweepMode
	// LegacySweep disables the packed single-stream sweep layout and
	// falls back to the separate first/arclist/mark CSR kernels. The
	// packed stream is the default; this switch exists for A/B
	// comparison and as an escape hatch.
	LegacySweep bool
	// ForkJoinSweep routes parallel sweeps through the original
	// per-level fork-join barriers instead of the persistent
	// dependency-bounded chunk scheduler. Retained as a differential
	// oracle and A/B baseline.
	ForkJoinSweep bool
	// CompressedSweep replaces the packed single-stream layout with its
	// byte-compressed twin (delta+varint arc heads, width-tagged narrow
	// weights): the sweep scans fewer bytes for the same relaxations,
	// which matters exactly as much as the sweep is bandwidth-bound.
	// Incompatible with LegacySweep.
	CompressedSweep bool
	// ParallelGrain pins the scheduler chunk size in sweep positions.
	// 0 (the default) sizes chunks by a byte budget instead: the stream
	// bytes each chunk spans stay within ChunkBytes, so a chunk's
	// working set fits in cache regardless of arc density.
	ParallelGrain int
	// ChunkBytes is the per-chunk stream-byte budget used when
	// ParallelGrain is 0; 0 detects the machine's L2 cache and budgets
	// half of it (see internal/machine; PHAST_CHUNK_BYTES overrides).
	ChunkBytes int
	// VertexMajorMulti routes a compressed engine's multi-tree sweeps
	// through the first-generation vertex-major (k labels per vertex,
	// contiguous) kernels instead of the lane-major decode-once family
	// that is now the default. Retained as a differential oracle and
	// A/B baseline; requires CompressedSweep.
	VertexMajorMulti bool
}

func (o *Options) packed() core.PackedSetting {
	if o.LegacySweep {
		return core.PackedOff
	}
	return core.PackedDefault
}

func (o *Options) coreOptions() (core.Options, error) {
	if o.LegacySweep && o.CompressedSweep {
		return core.Options{}, fmt.Errorf("phast: LegacySweep and CompressedSweep are mutually exclusive (the compressed stream is a packed layout)")
	}
	if o.VertexMajorMulti && !o.CompressedSweep {
		return core.Options{}, fmt.Errorf("phast: VertexMajorMulti selects the compressed multi-kernel oracle and requires CompressedSweep")
	}
	return core.Options{
		Mode:             o.SweepMode,
		Workers:          o.SweepWorkers,
		PackedSweep:      o.packed(),
		CompressedSweep:  o.CompressedSweep,
		ForkJoinSweep:    o.ForkJoinSweep,
		ParallelGrain:    o.ParallelGrain,
		ChunkBytes:       o.ChunkBytes,
		VertexMajorMulti: o.VertexMajorMulti,
	}, nil
}

// SweepMode selects the linear-sweep vertex order.
type SweepMode = core.SweepMode

// Sweep orders (see core.SweepMode).
const (
	SweepReordered  = core.SweepReordered
	SweepLevelOrder = core.SweepLevelOrder
	SweepRankOrder  = core.SweepRankOrder
)

// BuildStats reports what CH preprocessing did — independent-set batch
// sizes, witness-search counts, lazy re-queues, and per-phase wall time.
// See Engine.BuildStats.
type BuildStats = ch.BuildStats

// Engine answers single-source (PHAST) and point-to-point (CH) queries
// over one preprocessed graph. It is not safe for concurrent use; Clone
// gives each goroutine its own cursor over the shared preprocessed data.
type Engine struct {
	g          *Graph
	h          *ch.Hierarchy
	core       *core.Engine
	query      *ch.Query
	buildStats BuildStats

	// topo is the metric-independent customization topology, set only by
	// PreprocessCustomizable (and inherited by Customize/Clone). It is
	// what makes Customize possible: nil means this engine's hierarchy is
	// witness-pruned and metric-bound.
	topo *ch.Topology
	// metricSeq hands out hierarchy-level metric epochs; shared (by
	// pointer) among every engine derived from one topology so sibling
	// metrics never reuse an epoch.
	metricSeq *atomic.Int64

	// permutedQuery marks engines restored from a snapshot: the snapshot
	// stores only the engine-ID (level-permuted) hierarchy, so h and
	// query speak engine IDs and Query/QueryPath translate at the
	// boundary. Engines built in-process keep the original hierarchy and
	// need no translation.
	permutedQuery bool
}

// Preprocess runs contraction-hierarchy preprocessing on g and prepares
// a PHAST engine. The cost is amortized after a moderate number of tree
// computations (a few hundred; Section VIII-D reports break-even after
// 319 trees vs four-core Dijkstra). opt may be nil.
func Preprocess(g *Graph, opt *Options) (*Engine, error) {
	if opt == nil {
		opt = &Options{}
	}
	copt, err := opt.coreOptions()
	if err != nil {
		return nil, err
	}
	var bs BuildStats
	h := ch.Build(g, ch.Options{Workers: opt.CHWorkers, Stats: &bs})
	c, err := core.NewEngine(h, copt)
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	return &Engine{g: g, h: h, core: c, query: ch.NewQuery(h), buildStats: bs}, nil
}

// PreprocessCustomizable is Preprocess in the customizable (CCH-style)
// flavor: contraction keeps every all-pairs shortcut instead of
// pruning by witness search, so the resulting hierarchy's *structure*
// is metric-independent and Customize can later rebind it to any
// weight vector in milliseconds instead of re-running contraction.
// The returned engine answers queries under g's own weights (metric
// epoch 0); derive sibling metrics from it with Customize. The
// hierarchy is larger than Preprocess's (no witness pruning), which
// is the classic CCH space-for-flexibility trade.
func PreprocessCustomizable(g *Graph, opt *Options) (*Engine, error) {
	if opt == nil {
		opt = &Options{}
	}
	copt, err := opt.coreOptions()
	if err != nil {
		return nil, err
	}
	var bs BuildStats
	topo, err := ch.BuildCustomizable(g, ch.Options{Workers: opt.CHWorkers, Stats: &bs})
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	h := topo.Hierarchy()
	c, err := core.NewEngine(h, copt)
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	return &Engine{g: g, h: h, core: c, query: ch.NewQuery(h), buildStats: bs,
		topo: topo, metricSeq: &atomic.Int64{}}, nil
}

// Customizable reports whether this engine was built by
// PreprocessCustomizable and therefore supports Customize.
func (e *Engine) Customizable() bool { return e.topo != nil }

// Customize rebinds the shared topology to a new weight vector
// (indexed like Graph.ArcList; graph.Inf closes an arc) and returns a
// fresh engine for the new metric. The triangle-relaxation pass runs
// on the same persistent worker pool the sweeps use, and the new
// engine shares that pool, the topology, and the sweep layout with
// its siblings — only weights are new. name labels the metric (e.g.
// "car", "truck"); the returned engine's hierarchy is stamped with it
// and a fresh epoch. The receiver remains fully usable: customization
// never mutates published state, which is what lets a server swap
// metrics mid-traffic.
func (e *Engine) Customize(name string, weights []uint32) (*Engine, error) {
	if e.topo == nil {
		return nil, fmt.Errorf("phast: engine was not built with PreprocessCustomizable")
	}
	epoch := e.metricSeq.Add(1)
	h2, err := e.topo.Customize(weights, ch.CustomizeOptions{
		Pool:  e.core.SchedPool(),
		Epoch: epoch,
		Name:  name,
	})
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	c2, err := core.NewEngineSharingPool(e.core, h2)
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	return &Engine{g: h2.G, h: h2, core: c2, query: ch.NewQuery(h2), buildStats: e.buildStats,
		topo: e.topo, metricSeq: e.metricSeq}, nil
}

// MetricEpoch returns the hierarchy-level epoch of this engine's
// metric: 0 for the reference metric a build produced, and the value
// stamped by Customize otherwise. (A TreeServer assigns its own,
// independent epochs at InstallMetric time.)
func (e *Engine) MetricEpoch() int64 { return e.h.MetricEpoch }

// MetricName returns the metric label passed to Customize, or "" for
// the reference metric.
func (e *Engine) MetricName() string { return e.h.MetricName }

// SaveHierarchy serializes the preprocessed contraction hierarchy
// (including the graph) so Preprocess never has to run twice for the
// same input; reload with LoadEngine.
func (e *Engine) SaveHierarchy(w io.Writer) error {
	return ch.WriteHierarchy(w, e.h)
}

// LoadEngine reconstructs an engine from a hierarchy serialized with
// SaveHierarchy, skipping preprocessing entirely. opt may be nil
// (CHWorkers is ignored — the hierarchy already exists).
func LoadEngine(r io.Reader, opt *Options) (*Engine, error) {
	if opt == nil {
		opt = &Options{}
	}
	copt, err := opt.coreOptions()
	if err != nil {
		return nil, err
	}
	h, err := ch.ReadHierarchy(r)
	if err != nil {
		return nil, err
	}
	c, err := core.NewEngine(h, copt)
	if err != nil {
		return nil, fmt.Errorf("phast: %w", err)
	}
	return &Engine{g: h.G, h: h, core: c, query: ch.NewQuery(h)}, nil
}

// Clone returns an engine sharing all preprocessed data but owning
// private per-query buffers, for concurrent use from another goroutine.
func (e *Engine) Clone() *Engine {
	return &Engine{g: e.g, h: e.h, core: e.core.Clone(), query: ch.NewQuery(e.h), buildStats: e.buildStats,
		topo: e.topo, metricSeq: e.metricSeq, permutedQuery: e.permutedQuery}
}

// BuildStats returns the preprocessing counters recorded when this
// engine was built with Preprocess: contraction batch sizes, witness
// searches, and per-phase wall time. Engines restored with LoadEngine
// (no preprocessing ran) report the zero value.
func (e *Engine) BuildStats() BuildStats { return e.buildStats }

// Graph returns the original graph.
func (e *Engine) Graph() *Graph { return e.g }

// NumVertices returns n.
func (e *Engine) NumVertices() int { return e.g.NumVertices() }

// NumShortcuts returns the number of shortcut arcs the preprocessing
// added.
func (e *Engine) NumShortcuts() int { return e.h.NumShortcuts }

// NumLevels returns the number of CH levels (Figure 1's x-axis).
func (e *Engine) NumLevels() int { return int(e.h.MaxLevel) + 1 }

// LevelSizes returns the number of vertices on each level.
func (e *Engine) LevelSizes() []int { return e.h.LevelSizes() }

// CheckedBuild reports whether this binary was compiled with the
// phastdebug build tag, which turns CheckInvariants and the other
// internal/invariant validators into deep structural checks. In a
// release build they are no-ops.
const CheckedBuild = invariant.Enabled

// CheckInvariants deep-validates the preprocessed data structures this
// engine trusts blindly: the hierarchy's CSR shapes and arc partition,
// the level-descending relabeling, and the CH search heap index. It
// only validates under -tags phastdebug (see CheckedBuild); a release
// build returns nil immediately.
func (e *Engine) CheckInvariants() error {
	if err := invariant.Hierarchy(e.h); err != nil {
		return err
	}
	if e.topo != nil {
		// Customizable hierarchies additionally satisfy the
		// triangle-relaxation fixed point over their own weights.
		if err := invariant.CustomizedMetric(e.h); err != nil {
			return err
		}
	}
	return e.core.CheckInvariants()
}

// Tree computes all shortest-path distances from source with the
// sequential PHAST sweep. Read results with Dist or Distances.
func (e *Engine) Tree(source int32) { e.core.Tree(source) }

// TreeParallel is Tree with the parallel sweep of Section V, executed by
// the persistent dependency-bounded chunk scheduler (or the per-level
// fork-join barriers when Options.ForkJoinSweep is set).
func (e *Engine) TreeParallel(source int32) { e.core.TreeParallel(source) }

// TreeWithParents is Tree plus parent pointers; enables PathTo.
func (e *Engine) TreeWithParents(source int32) { e.core.TreeWithParents(source) }

// TreeWithParentsParallel is TreeWithParents with the parallel sweep.
func (e *Engine) TreeWithParentsParallel(source int32) { e.core.TreeWithParentsParallel(source) }

// MultiTreeParallel is MultiTree with the parallel sweep; each chunk of
// the sweep relaxes all k trees before moving on.
func (e *Engine) MultiTreeParallel(sources []int32, useLanes bool) {
	e.core.MultiTreeParallel(sources, useLanes)
}

// SetWorkers adjusts the parallel-sweep worker budget at runtime
// (0 = GOMAXPROCS), resizing the shared persistent pool. It returns an
// error if a parallel sweep is in flight on any engine sharing this
// preprocessed data; no sweep state is disturbed in that case.
func (e *Engine) SetWorkers(workers int) error { return e.core.SetWorkers(workers) }

// Workers returns the current parallel-sweep worker budget.
func (e *Engine) Workers() int { return e.core.Workers() }

// SchedStats is the persistent scheduler's counter snapshot (see
// core.SchedStats): sweeps executed, chunks claimed, dependency stalls,
// and idle wakeups.
type SchedStats = core.SchedStats

// SchedStats returns cumulative persistent-scheduler counters for all
// engines sharing this preprocessed data.
func (e *Engine) SchedStats() SchedStats { return e.core.SchedStats() }

// StreamBytes returns the bytes of the graph layout one sweep scans —
// the compressed stream's byte length under Options.CompressedSweep,
// the packed stream's words×4 by default, and the CSR footprint under
// LegacySweep. The numerator of the layout's compression ratio and the
// graph term of the bandwidth model.
func (e *Engine) StreamBytes() int64 { return e.core.StreamBytes() }

// CompressionRatio returns StreamBytes relative to the uncompressed
// packed stream (1.0 for uncompressed layouts; < 1 means the sweep
// scans fewer bytes than the packed baseline).
func (e *Engine) CompressionRatio() float64 { return e.core.CompressionRatio() }

// Dist returns the distance of v from the last tree's source, or Inf.
func (e *Engine) Dist(v int32) uint32 { return e.core.Dist(v) }

// Distances copies all n labels of the last tree into buf (indexed by
// vertex ID; Inf marks unreached vertices).
func (e *Engine) Distances(buf []uint32) { e.core.DistancesInto(buf) }

// PathTo expands the path from the last TreeWithParents source to v into
// original-graph vertices, or nil if unreached.
func (e *Engine) PathTo(v int32) []int32 { return e.core.PathTo(v) }

// TreeParents derives the shortest-path tree of the original graph from
// the last tree's labels (Section VII-A); buf[v] receives v's parent or
// -1. Requires strictly positive arc lengths.
func (e *Engine) TreeParents(buf []int32) { e.core.GTreeParents(buf) }

// MultiTree grows one tree per source in a single sweep (Section IV-B).
// useLanes enables the 4-wide SSE-style relaxation (len(sources) must
// then be a multiple of 4). Read results with MultiDist.
func (e *Engine) MultiTree(sources []int32, useLanes bool) {
	e.core.MultiTree(sources, useLanes)
}

// MultiDist returns the label of v in tree i of the last MultiTree.
func (e *Engine) MultiDist(i int, v int32) uint32 { return e.core.MultiDist(i, v) }

// Query returns the s→t distance with a bidirectional CH search — the
// point-to-point algorithm PHAST builds on (Section II-B).
func (e *Engine) Query(s, t int32) uint32 {
	if e.permutedQuery {
		s, t = e.core.EngineID(s), e.core.EngineID(t)
	}
	return e.query.Distance(s, t)
}

// EnableQueryStalling turns on stall-on-demand for Query/QueryPath
// (Geisberger et al.'s standard CH query optimization): vertices whose
// labels are provably suboptimal are settled without scanning, shrinking
// search spaces while keeping distances exact.
func (e *Engine) EnableQueryStalling() { e.query.EnableStalling() }

// QueryPath returns the s→t shortest path as original-graph vertices
// (shortcuts unpacked), or nil if unreachable.
func (e *Engine) QueryPath(s, t int32) []int32 {
	if !e.permutedQuery {
		return e.query.Path(s, t)
	}
	p := e.query.Path(e.core.EngineID(s), e.core.EngineID(t))
	for i, v := range p {
		p[i] = e.core.OrigID(v)
	}
	return p
}

// CopyDistances writes the labels of the last tree into buf indexed by
// vertex ID. The copy stays valid across later sweeps on this engine —
// the read-back form to use for results that cross goroutines.
func (e *Engine) CopyDistances(buf []uint32) { e.core.CopyDistances(buf) }

// TreeServer is the goroutine-safe serving layer: it batches concurrent
// tree requests into multi-source sweeps over a pool of engine clones
// (Section IV-B batching × Section V parallelism). See Engine.Serve.
type TreeServer = server.TreeServer

// TreeResult is one tree computed by a TreeServer; its distance buffer
// is a private pooled copy (call Release when done).
type TreeResult = server.TreeResult

// ServeOptions configures Engine.Serve; the zero value selects the
// defaults documented on server.Options (MaxBatch 16, GOMAXPROCS
// engines, 200µs linger, blocking backpressure).
type ServeOptions = server.Options

// ServerStats is the atomic counter snapshot returned by
// TreeServer.Stats.
type ServerStats = server.Stats

// Overload policies for ServeOptions.Overload.
const (
	BlockOnFull  = server.BlockOnFull
	RejectOnFull = server.RejectOnFull
)

// Serving-layer sentinel errors.
var (
	// ErrServerOverloaded is returned by TreeServer.Query under the
	// RejectOnFull policy when the request queue is full.
	ErrServerOverloaded = server.ErrOverloaded
	// ErrServerClosed is returned by TreeServer.Query after Close.
	ErrServerClosed = server.ErrClosed
	// ErrUnknownMetric is returned by TreeServer.QueryMetric for a name
	// that was never installed.
	ErrUnknownMetric = server.ErrUnknownMetric
)

// DefaultMetric is the server-side name of the metric Serve starts
// with (the engine's own weights).
const DefaultMetric = server.DefaultMetric

// InstallMetric publishes this engine as the live epoch of the named
// metric on srv — typically an engine returned by Customize, so a
// freshly customized weight vector goes live mid-traffic without
// draining. It returns the server-side epoch; every TreeResult swept
// under it reports that epoch via Epoch().
func (e *Engine) InstallMetric(srv *TreeServer, name string) (uint64, error) {
	return srv.InstallMetric(name, e.core)
}

// Serve starts a concurrent tree server over this engine's preprocessed
// data. The server owns its own pool of engine clones, so e remains
// usable from its own goroutine. opt may be nil. Close the server to
// release its goroutines.
func (e *Engine) Serve(opt *ServeOptions) (*TreeServer, error) {
	if opt == nil {
		opt = &ServeOptions{}
	}
	return server.New(e.core, *opt)
}

// ShardedServer is the partitioned serving layer: the graph is cut into
// K cells, each served by an RPHAST restriction of the shared engine.
// Single-target queries route to the target's cell (~n/K sweep work);
// full trees scatter-gather all K cells and are byte-identical to a
// monolithic sweep. Built for fleets of processes mapping one engine
// snapshot (see LoadSnapshot), where each process owns a few cells.
type ShardedServer = server.Sharded

// ShardedResult is one full tree gathered by a ShardedServer.
type ShardedResult = server.ShardedResult

// ShardedServeOptions configures Engine.ServeSharded (shard count K,
// partition seed, per-shard queue bound).
type ShardedServeOptions = server.ShardedOptions

// ServeSharded partitions the graph and starts one executor per cell
// over RPHAST restrictions of this engine. The engine must use the
// reordered sweep mode (the default, and what snapshots of default
// engines restore). opt may be nil. Close the server to release its
// goroutines.
func (e *Engine) ServeSharded(opt *ShardedServeOptions) (*ShardedServer, error) {
	if opt == nil {
		opt = &ShardedServeOptions{}
	}
	return server.NewSharded(e.g, e.core, *opt)
}

// InstallShardedMetric publishes this engine as the live epoch of srv —
// the sharded counterpart of InstallMetric: per-cell selections are
// rebuilt over this engine off to the side and swapped in atomically,
// so a new metric goes live mid-traffic without draining.
func (e *Engine) InstallShardedMetric(srv *ShardedServer, name string) (uint64, error) {
	return srv.InstallMetric(name, e.core)
}
