// Package phast is a Go implementation of PHAST — "Hardware-Accelerated
// Shortest Path Trees" (Delling, Goldberg, Nowatzyk, Werneck; IPDPS
// 2011) — a single-source shortest path algorithm for road networks and
// other graphs of low highway dimension that, after a contraction-
// hierarchies preprocessing phase, computes every distance from a source
// with one tiny upward search plus one cache-friendly linear sweep.
//
// The package exposes:
//
//   - graph construction (builders, DIMACS files, a synthetic
//     road-network generator),
//   - Preprocess/Engine: PHAST trees (sequential, multi-core,
//     multi-source per sweep) and contraction-hierarchy point-to-point
//     queries,
//   - GPUEngine: the GPHAST pipeline on a simulated SIMT GPU,
//   - the paper's applications: graph diameter, arc flags, reach and
//     betweenness centrality.
//
// See README.md for a tour and DESIGN.md for the paper-to-code map.
package phast

import (
	"io"

	"phast/internal/dimacs"
	"phast/internal/graph"
	"phast/internal/roadnet"
)

// Inf is the distance label of an unreachable vertex.
const Inf = graph.Inf

// Graph is an immutable directed graph with non-negative 32-bit arc
// lengths in adjacency-array form.
type Graph = graph.Graph

// Arc is one outgoing arc: head vertex and length.
type Arc = graph.Arc

// Builder accumulates arcs and produces a Graph.
type Builder = graph.Builder

// NewBuilder creates a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromArcs builds a graph from (tail, head, weight) triples.
func FromArcs(n int, triples [][3]int64) (*Graph, error) {
	return graph.FromArcs(n, triples)
}

// ReadDIMACS parses a 9th-DIMACS-challenge .gr stream (the distribution
// format of the paper's Europe/USA benchmark instances).
func ReadDIMACS(r io.Reader) (*Graph, error) { return dimacs.ReadGraph(r) }

// WriteDIMACS serializes a graph as a .gr stream.
func WriteDIMACS(w io.Writer, g *Graph, comments ...string) error {
	return dimacs.WriteGraph(w, g, comments...)
}

// Metric selects road-network arc weights: travel time or distance.
type Metric = roadnet.Metric

// Road-network weight metrics.
const (
	TravelTime     = roadnet.TravelTime
	TravelDistance = roadnet.TravelDistance
)

// RoadParams configures the synthetic road-network generator.
type RoadParams = roadnet.Params

// RoadNetwork is a generated road network (graph + coordinates).
type RoadNetwork = roadnet.Network

// RoadPreset names a ready-made instance family (europe-xs … usa-l).
type RoadPreset = roadnet.Preset

// Road-network presets, scaled stand-ins for the paper's PTV Europe and
// TIGER USA instances.
const (
	EuropeXS = roadnet.PresetEuropeXS
	EuropeS  = roadnet.PresetEuropeS
	EuropeM  = roadnet.PresetEuropeM
	EuropeL  = roadnet.PresetEuropeL
	USAXS    = roadnet.PresetUSAXS
	USAS     = roadnet.PresetUSAS
	USAM     = roadnet.PresetUSAM
	USAL     = roadnet.PresetUSAL
)

// GenerateRoadNetwork builds a synthetic road network from parameters.
func GenerateRoadNetwork(p RoadParams) (*RoadNetwork, error) {
	return roadnet.Generate(p)
}

// GenerateRoadNetworkPreset builds one of the named instances.
func GenerateRoadNetworkPreset(name RoadPreset, metric Metric) (*RoadNetwork, error) {
	return roadnet.GeneratePreset(name, metric)
}
