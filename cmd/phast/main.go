// Command phast preprocesses a road network and answers shortest-path
// queries from the command line.
//
// Usage:
//
//	phast -preset europe-s -source 12345        one tree, print stats
//	phast -graph europe.gr -query 17:42         point-to-point distance
//	phast -preset usa-s -trees 100              time 100 random trees
//	phast -preset europe-s -info                instance + hierarchy info
//	phast -preset europe-m -save-ch europe.ch   cache preprocessing
//	phast -load-ch europe.ch -trees 1000        reuse it
//	phast -preset europe-s -replay q.txt        serve a query file through
//	                                            the batching tree server
//
// One of -graph, -preset or -load-ch selects the instance; -source,
// -query, -trees, -replay and -info select the work (combinable).
// A -replay file holds one source vertex per line ('#' starts a
// comment); -clients and -batch shape the concurrent server load.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"phast"
)

// config collects the CLI flags.
type config struct {
	graphPath string
	preset    string
	metric    string
	loadCH    string
	saveCH    string
	source    int
	query     string
	trees     int
	info      bool
	seed      int64
	parallel  bool
	replay    string
	clients   int
	batch     int
}

func main() {
	var c config
	flag.StringVar(&c.graphPath, "graph", "", "DIMACS .gr file to load")
	flag.StringVar(&c.preset, "preset", "", "synthetic instance preset (europe-xs..usa-l)")
	flag.StringVar(&c.metric, "metric", "time", "weight metric for -preset: time or distance")
	flag.StringVar(&c.loadCH, "load-ch", "", "load a cached hierarchy instead of preprocessing")
	flag.StringVar(&c.saveCH, "save-ch", "", "save the hierarchy after preprocessing")
	flag.IntVar(&c.source, "source", -1, "compute one shortest-path tree from this vertex")
	flag.StringVar(&c.query, "query", "", "point-to-point query s:t")
	flag.IntVar(&c.trees, "trees", 0, "time this many random trees")
	flag.BoolVar(&c.info, "info", false, "print instance and hierarchy statistics")
	flag.Int64Var(&c.seed, "seed", 42, "random seed for -trees")
	flag.BoolVar(&c.parallel, "parallel", false, "use the intra-level parallel sweep")
	flag.StringVar(&c.replay, "replay", "", "replay a query file (one source per line) through the tree server")
	flag.IntVar(&c.clients, "clients", 8, "concurrent client goroutines for -replay")
	flag.IntVar(&c.batch, "batch", 16, "max sources per server sweep for -replay")
	flag.Parse()
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "phast:", err)
		os.Exit(1)
	}
}

func run(c config) error {
	eng, err := buildEngine(c)
	if err != nil {
		return err
	}
	g := eng.Graph()
	if c.saveCH != "" {
		f, err := os.Create(c.saveCH)
		if err != nil {
			return err
		}
		if err := eng.SaveHierarchy(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved hierarchy to %s\n", c.saveCH)
	}
	if c.info {
		sizes := eng.LevelSizes()
		fmt.Printf("level 0 holds %d of %d vertices (%.1f%%)\n",
			sizes[0], g.NumVertices(), 100*float64(sizes[0])/float64(g.NumVertices()))
	}
	if c.source >= 0 {
		if c.source >= g.NumVertices() {
			return fmt.Errorf("source %d out of range [0,%d)", c.source, g.NumVertices())
		}
		start := time.Now()
		if c.parallel {
			eng.TreeParallel(int32(c.source))
		} else {
			eng.Tree(int32(c.source))
		}
		elapsed := time.Since(start)
		reached, far, farV := 0, uint32(0), int32(-1)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if d := eng.Dist(v); d != phast.Inf {
				reached++
				if d > far {
					far, farV = d, v
				}
			}
		}
		fmt.Printf("tree from %d: %v, %d reached, eccentricity %d (at vertex %d)\n",
			c.source, elapsed, reached, far, farV)
	}
	if c.query != "" {
		s, t, err := parseQuery(c.query)
		if err != nil {
			return err
		}
		if int(s) >= g.NumVertices() || int(t) >= g.NumVertices() {
			return fmt.Errorf("query endpoints out of range")
		}
		start := time.Now()
		d := eng.Query(s, t)
		elapsed := time.Since(start)
		if d == phast.Inf {
			fmt.Printf("query %d->%d: unreachable (%v)\n", s, t, elapsed)
		} else {
			path := eng.QueryPath(s, t)
			fmt.Printf("query %d->%d: distance %d, %d path vertices (%v)\n",
				s, t, d, len(path), elapsed)
		}
	}
	if c.trees > 0 {
		rng := rand.New(rand.NewSource(c.seed))
		start := time.Now()
		for i := 0; i < c.trees; i++ {
			s := int32(rng.Intn(g.NumVertices()))
			if c.parallel {
				eng.TreeParallel(s)
			} else {
				eng.Tree(s)
			}
		}
		total := time.Since(start)
		fmt.Printf("%d trees: %v total, %v per tree\n",
			c.trees, total.Round(time.Millisecond), total/time.Duration(c.trees))
	}
	if c.replay != "" {
		if err := replayQueries(eng, c); err != nil {
			return err
		}
	}
	return nil
}

// replayQueries fires every source in the replay file at a TreeServer
// from c.clients concurrent goroutines — the CLI face of the batching
// serving layer — and reports throughput plus server statistics.
func replayQueries(eng *phast.Engine, c config) error {
	sources, err := readQueryFile(c.replay, eng.NumVertices())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("replay file %s holds no queries", c.replay)
	}
	if c.clients < 1 {
		return fmt.Errorf("-clients must be positive, got %d", c.clients)
	}
	srv, err := eng.Serve(&phast.ServeOptions{MaxBatch: c.batch})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	start := time.Now()
	for w := 0; w < c.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sources); i += c.clients {
				res, err := srv.Query(nil, sources[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				res.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	srv.Close()
	if firstErr != nil {
		return firstErr
	}
	st := srv.Stats()
	fmt.Printf("replayed %d queries with %d clients: %v total, %.0f queries/s\n",
		len(sources), c.clients, elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds())
	fmt.Printf("server: %d batches, mean occupancy %.2f/%d, queue high water %d\n",
		st.Batches, st.MeanBatchOccupancy, c.batch, st.QueueHighWater)
	return nil
}

// readQueryFile parses a replay file: one source vertex per line, blank
// lines and '#' comments ignored. Every source must lie in [0,n).
func readQueryFile(path string, n int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sources []int32
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed source %q", path, line, text)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%s:%d: source %d out of range [0,%d)", path, line, v, n)
		}
		sources = append(sources, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sources, nil
}

func buildEngine(c config) (*phast.Engine, error) {
	if c.loadCH != "" {
		if c.graphPath != "" || c.preset != "" {
			return nil, fmt.Errorf("-load-ch replaces -graph/-preset")
		}
		f, err := os.Open(c.loadCH)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		eng, err := phast.LoadEngine(f, nil)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded hierarchy: %d vertices, %d shortcuts, %d levels (%v)\n",
			eng.NumVertices(), eng.NumShortcuts(), eng.NumLevels(),
			time.Since(start).Round(time.Millisecond))
		return eng, nil
	}
	g, err := loadGraph(c.graphPath, c.preset, c.metric)
	if err != nil {
		return nil, err
	}
	fmt.Printf("instance: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())
	start := time.Now()
	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		return nil, err
	}
	fmt.Printf("preprocessing: %v (%d shortcuts, %d levels)\n",
		time.Since(start).Round(time.Millisecond), eng.NumShortcuts(), eng.NumLevels())
	return eng, nil
}

func loadGraph(graphPath, preset, metric string) (*phast.Graph, error) {
	switch {
	case graphPath != "" && preset != "":
		return nil, fmt.Errorf("-graph and -preset are mutually exclusive")
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return phast.ReadDIMACS(f)
	case preset != "":
		m := phast.TravelTime
		switch metric {
		case "time":
		case "distance":
			m = phast.TravelDistance
		default:
			return nil, fmt.Errorf("unknown metric %q (want time or distance)", metric)
		}
		net, err := phast.GenerateRoadNetworkPreset(phast.RoadPreset(preset), m)
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	default:
		return nil, fmt.Errorf("one of -graph, -preset or -load-ch is required")
	}
}

func parseQuery(q string) (int32, int32, error) {
	parts := strings.Split(q, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("malformed -query %q, want s:t", q)
	}
	s, err1 := strconv.Atoi(parts[0])
	t, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || s < 0 || t < 0 {
		return 0, 0, fmt.Errorf("malformed -query %q", q)
	}
	return int32(s), int32(t), nil
}
