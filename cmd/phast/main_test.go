package main

import (
	"os"
	"path/filepath"
	"testing"

	"phast"
)

func TestParseQuery(t *testing.T) {
	s, tt, err := parseQuery("17:42")
	if err != nil || s != 17 || tt != 42 {
		t.Fatalf("parseQuery: %d %d %v", s, tt, err)
	}
	for _, bad := range []string{"", "17", "17:42:1", "a:b", "-1:2"} {
		if _, _, err := parseQuery(bad); err == nil {
			t.Fatalf("parseQuery accepted %q", bad)
		}
	}
}

func TestLoadGraphModes(t *testing.T) {
	if _, err := loadGraph("", "", "time"); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadGraph("x.gr", "europe-xs", "time"); err == nil {
		t.Fatal("both inputs accepted")
	}
	if _, err := loadGraph("", "europe-xs", "bogus"); err == nil {
		t.Fatal("bad metric accepted")
	}
	if _, err := loadGraph("", "nope", "time"); err == nil {
		t.Fatal("bad preset accepted")
	}
	g, err := loadGraph("", "europe-xs", "distance")
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("preset load failed: %v", err)
	}
	// File path: write a graph and read it back through the CLI loader.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := phast.WriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := loadGraph(path, "", "time")
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(g) {
		t.Fatal("CLI file loader changed the graph")
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.gr"), "", "time"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := config{preset: "europe-xs", metric: "time", source: 3, query: "1:9", trees: 2, info: true, seed: 1}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.source, bad.query, bad.trees = 1<<20, "", 0
	if err := run(bad); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	bad = base
	bad.source, bad.query = -1, "1:99999999"
	if err := run(bad); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestSaveLoadHierarchyCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ch")
	if err := run(config{preset: "europe-xs", metric: "time", saveCH: path}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{loadCH: path, source: 5, query: "2:9", seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{loadCH: path, preset: "europe-xs"}); err == nil {
		t.Fatal("-load-ch with -preset accepted")
	}
	if err := run(config{loadCH: filepath.Join(dir, "missing.ch")}); err == nil {
		t.Fatal("missing hierarchy file accepted")
	}
}

func TestReadQueryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	body := "# replay sources\n3\n 7 # inline comment\n\n0\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	sources, err := readQueryFile(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 7, 0}
	if len(sources) != len(want) {
		t.Fatalf("got %v, want %v", sources, want)
	}
	for i := range want {
		if sources[i] != want[i] {
			t.Fatalf("got %v, want %v", sources, want)
		}
	}
	for name, bad := range map[string]string{
		"malformed":    "abc\n",
		"out of range": "10\n",
		"negative":     "-1\n",
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readQueryFile(path, 10); err == nil {
			t.Fatalf("%s source accepted", name)
		}
	}
	if _, err := readQueryFile(filepath.Join(dir, "missing.txt"), 10); err == nil {
		t.Fatal("missing replay file accepted")
	}
}

func TestReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(path, []byte("0\n1\n2\n3\n4\n5\n6\n7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := config{preset: "europe-xs", metric: "time", seed: 1,
		replay: path, clients: 4, batch: 4}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	c.clients = 0
	if err := run(c); err == nil {
		t.Fatal("-clients 0 accepted")
	}
	c.clients = 2
	c.replay = filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(c.replay, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(c); err == nil {
		t.Fatal("empty replay file accepted")
	}
}
