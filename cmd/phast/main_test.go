package main

import (
	"os"
	"path/filepath"
	"testing"

	"phast"
)

func TestParseQuery(t *testing.T) {
	s, tt, err := parseQuery("17:42")
	if err != nil || s != 17 || tt != 42 {
		t.Fatalf("parseQuery: %d %d %v", s, tt, err)
	}
	for _, bad := range []string{"", "17", "17:42:1", "a:b", "-1:2"} {
		if _, _, err := parseQuery(bad); err == nil {
			t.Fatalf("parseQuery accepted %q", bad)
		}
	}
}

func TestLoadGraphModes(t *testing.T) {
	if _, err := loadGraph("", "", "time"); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadGraph("x.gr", "europe-xs", "time"); err == nil {
		t.Fatal("both inputs accepted")
	}
	if _, err := loadGraph("", "europe-xs", "bogus"); err == nil {
		t.Fatal("bad metric accepted")
	}
	if _, err := loadGraph("", "nope", "time"); err == nil {
		t.Fatal("bad preset accepted")
	}
	g, err := loadGraph("", "europe-xs", "distance")
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("preset load failed: %v", err)
	}
	// File path: write a graph and read it back through the CLI loader.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := phast.WriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := loadGraph(path, "", "time")
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(g) {
		t.Fatal("CLI file loader changed the graph")
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.gr"), "", "time"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := config{preset: "europe-xs", metric: "time", source: 3, query: "1:9", trees: 2, info: true, seed: 1}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.source, bad.query, bad.trees = 1<<20, "", 0
	if err := run(bad); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	bad = base
	bad.source, bad.query = -1, "1:99999999"
	if err := run(bad); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestSaveLoadHierarchyCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ch")
	if err := run(config{preset: "europe-xs", metric: "time", saveCH: path}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{loadCH: path, source: 5, query: "2:9", seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{loadCH: path, preset: "europe-xs"}); err == nil {
		t.Fatal("-load-ch with -preset accepted")
	}
	if err := run(config{loadCH: filepath.Join(dir, "missing.ch")}); err == nil {
		t.Fatal("missing hierarchy file accepted")
	}
}
