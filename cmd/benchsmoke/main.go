// Command benchsmoke is the CI benchmark smoke check, with two gated
// metrics:
//
//   - sweep: times the packed single-stream sweep kernels against their
//     legacy CSR+mark twins on the europe-m fixture (same DFS layout and
//     source stream as the root bench_test.go), writes BENCH_3.json, and
//     exits non-zero if packed is slower than legacy beyond tolerance.
//   - chbuild: times batch-parallel CH preprocessing at Workers 1 and
//     NumCPU on the same fixture graph, writes BENCH_4.json, and exits
//     non-zero if the parallel build is slower than the sequential one
//     (on a multi-core host) or the shortcut count drifts more than 5%.
//   - sched: times the persistent dependency-bounded chunk scheduler
//     against the retained per-level fork-join oracle (single-tree and
//     k=16 multi-tree), writes BENCH_5.json, and exits non-zero if the
//     pooled scheduler is slower than fork-join beyond the sched
//     tolerance. On a multi-core host it also records the pooled
//     scheduler's parallel speedup over one worker; that half
//     auto-skips on single-CPU hosts, where both configurations
//     degenerate to one goroutine.
//   - customize: times metric customization (triangle relaxation plus
//     mounting the customized hierarchy as a pool-sharing engine)
//     against a full from-scratch customizable build plus engine, on
//     the europe-xs fixture, writes BENCH_6.json, and exits non-zero
//     if customization costs more than the customize tolerance (20%)
//     of the rebuild it replaces — the whole point of the topology/
//     metric split. On a multi-core host it also records the parallel
//     (pooled) customization's speedup over the sequential pass; that
//     half auto-skips on single-CPU hosts. The fixture is europe-xs
//     rather than europe-m because the baseline side — an all-pairs
//     (witness-free) contraction — is minutes-long at 66k vertices,
//     which is exactly the cost customization exists to avoid; the
//     measured ratio is scale-robust in customization's favor (both
//     sides grow with the same triangle count).
//   - stream: times the compressed (delta+varint, narrow-weight) sweep
//     stream against the uncompressed packed stream on the europe-m
//     fixture, writes BENCH_7.json, and exits non-zero if the
//     compressed stream fails to shrink below the bytes tolerance
//     (default 0.75x packed), the compressed single-tree sweep runs
//     slower than the stream time tolerance (default 1.10x packed), or
//     the k=16 multi-tree sweep exceeds its multi tolerance (default
//     1.08x packed — the decode-once lane-major kernels hold the
//     compressed multi sweep within a few percent of packed).
//   - snapshot: preprocesses the europe-m fixture once, saves the
//     engine snapshot, and times the mmap and heap restores against
//     the rebuild, writing BENCH_8.json; exits non-zero if the mmap
//     cold start is not at least the snapshot speedup floor (default
//     50x) faster than the rebuild, or a sharded routed distance costs
//     more than the shard tolerance (default 1.10x) of one monolithic
//     tree sweep.
//
// Usage:
//
//	benchsmoke                       run all gates, write BENCH_3..8.json
//	benchsmoke -mode sweep -out report.json -tolerance 1.10
//	benchsmoke -mode chbuild -chbuild-out BENCH_4.json
//	benchsmoke -mode sched -sched-out BENCH_5.json -sched-tolerance 1.10
//	benchsmoke -mode customize -customize-out BENCH_6.json
//	benchsmoke -mode stream -stream-out BENCH_7.json -stream-tolerance 1.10
//	benchsmoke -mode snapshot -snapshot-out BENCH_8.json -snapshot-speedup 50
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"phast"
	"phast/internal/bandwidth"
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/roadnet"
)

// Result is one measured benchmark cell.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTree   float64 `json:"ns_per_tree"`
	ModeledGBps float64 `json:"modeled_gbps"`
}

// Report is the BENCH_3.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// SpeedupTree is legacy ns/tree divided by packed ns/tree for the
	// single-tree sweep (>1 means the packed stream wins); SpeedupMulti
	// is the same ratio for the k=16 multi-tree sweep.
	SpeedupTree  float64  `json:"speedup_tree"`
	SpeedupMulti float64  `json:"speedup_multi_k16"`
	Results      []Result `json:"results"`
}

func fixtureGraph(preset roadnet.Preset) (*graph.Graph, error) {
	net, err := roadnet.GeneratePreset(preset, roadnet.TravelTime)
	if err != nil {
		return nil, err
	}
	perm := layout.DFS(net.Graph, 0)
	return net.Graph.Permute(perm)
}

func buildFixture(preset roadnet.Preset) (*graph.Graph, *ch.Hierarchy, []int32, error) {
	g, err := fixtureGraph(preset)
	if err != nil {
		return nil, nil, nil, err
	}
	h := ch.Build(g, ch.Options{})
	rng := rand.New(rand.NewSource(7))
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.NumVertices()))
	}
	return g, h, sources, nil
}

func engine(h *ch.Hierarchy, packed core.PackedSetting) (*core.Engine, error) {
	return core.NewEngine(h, core.Options{Mode: core.SweepReordered, Workers: 1, PackedSweep: packed})
}

// rounds is how many interleaved A/B measurements each cell gets; the
// per-cell minimum is reported. Each round constructs FRESH engines
// (alternating which variant allocates first) so allocation placement,
// CPU frequency ramp-up, and run order all vary across rounds instead
// of biasing every measurement the same way.
const rounds = 3

// benchTree times single-tree sweeps once and returns ns/op plus the
// modeled bandwidth at that speed.
func benchTree(e *core.Engine, sources []int32) (float64, float64) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Tree(sources[i%len(sources)])
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(1)*int64(r.N), r.T)
}

// benchMulti times k-tree sweeps once (one op grows k trees).
func benchMulti(e *core.Engine, sources []int32, k int) (float64, float64) {
	batch := make([]int32, k)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range batch {
				batch[j] = sources[(i*k+j)%len(sources)]
			}
			e.MultiTree(batch, false)
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(k)*int64(r.N), r.T)
}

// measure runs `rounds` fresh-engine A/B rounds of fn and returns each
// variant's best cell.
func measure(h *ch.Hierarchy, name string, k int, warm []int32,
	fn func(e *core.Engine) (float64, float64)) (p, l Result, err error) {
	p = Result{Name: name + "_packed", NsPerOp: math.Inf(1)}
	l = Result{Name: name + "_legacy", NsPerOp: math.Inf(1)}
	for r := 0; r < rounds; r++ {
		settings := []core.PackedSetting{core.PackedOn, core.PackedOff}
		if r%2 == 1 { // alternate construction and run order
			settings[0], settings[1] = settings[1], settings[0]
		}
		for _, setting := range settings {
			e, err := engine(h, setting)
			if err != nil {
				return p, l, err
			}
			e.Tree(warm[0]) // pay first-touch faults outside the timer
			ns, gbps := fn(e)
			res := &p
			if setting == core.PackedOff {
				res = &l
			}
			if ns < res.NsPerOp {
				res.NsPerOp = ns
				res.NsPerTree = ns / float64(k)
				res.ModeledGBps = gbps
			}
		}
	}
	return p, l, nil
}

func runSweep(out, preset string, tolerance float64) error {
	g, h, sources, err := buildFixture(roadnet.Preset(preset))
	if err != nil {
		return err
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Instance:  preset + "/dfs",
		N:         g.NumVertices(),
		M:         g.NumArcs(),
	}
	pt, lt, err := measure(h, "Table1_PHASTReordered", 1, sources,
		func(e *core.Engine) (float64, float64) { return benchTree(e, sources) })
	if err != nil {
		return err
	}
	pm, lm, err := measure(h, "Table2_MultiTree_k16", 16, sources,
		func(e *core.Engine) (float64, float64) { return benchMulti(e, sources, 16) })
	if err != nil {
		return err
	}
	rep.Results = []Result{pt, lt, pm, lm}
	rep.SpeedupTree = lt.NsPerTree / pt.NsPerTree
	rep.SpeedupMulti = lm.NsPerTree / pm.NsPerTree

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.0f ns/op %12.0f ns/tree %8.2f modeled GB/s\n",
			r.Name, r.NsPerOp, r.NsPerTree, r.ModeledGBps)
	}
	fmt.Printf("packed speedup: %.3fx single-tree, %.3fx multi k=16 (gate: ratio ≤ %.2f)\n",
		rep.SpeedupTree, rep.SpeedupMulti, tolerance)

	if ratio := pt.NsPerTree / lt.NsPerTree; ratio > tolerance {
		return fmt.Errorf("packed single-tree sweep is %.3fx legacy time (tolerance %.2f)", ratio, tolerance)
	}
	if ratio := pm.NsPerTree / lm.NsPerTree; ratio > tolerance {
		return fmt.Errorf("packed multi-tree sweep is %.3fx legacy time (tolerance %.2f)", ratio, tolerance)
	}
	return nil
}

// CHBuildResult is one measured preprocessing configuration.
type CHBuildResult struct {
	Workers         int     `json:"workers"`
	BuildMs         float64 `json:"build_ms"` // min over rounds
	Shortcuts       int     `json:"shortcuts"`
	Batches         int     `json:"batches"`
	AvgBatch        float64 `json:"avg_batch"`
	MaxBatch        int     `json:"max_batch"`
	WitnessSearches int64   `json:"witness_searches"`
}

// CHBuildReport is the BENCH_4.json schema: the chbuild scaling gate.
type CHBuildReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// SpeedupParallel is sequential build wall time divided by the
	// NumCPU-worker wall time (>1 means the parallel build wins; 1.0 by
	// construction on a single-core host).
	SpeedupParallel float64 `json:"speedup_parallel"`
	// ShortcutRatio is parallel shortcuts over sequential shortcuts. The
	// batch contractor is deterministic across worker counts, so any
	// value other than 1.0 is a regression; the gate allows 5%.
	ShortcutRatio float64         `json:"shortcut_ratio"`
	Results       []CHBuildResult `json:"results"`
}

// chbuildRounds is how many interleaved measurements each worker count
// gets (minimum wall time reported); preprocessing runs seconds per
// round, so two rounds balance jitter rejection against CI budget.
const chbuildRounds = 2

func runCHBuild(out, preset string, tolerance float64) error {
	g, err := fixtureGraph(roadnet.Preset(preset))
	if err != nil {
		return err
	}
	workerSets := []int{1, runtime.NumCPU()}
	if workerSets[1] == 1 {
		workerSets = workerSets[:1]
	}
	results := make([]CHBuildResult, len(workerSets))
	for i := range results {
		results[i] = CHBuildResult{Workers: workerSets[i], BuildMs: math.Inf(1)}
	}
	for r := 0; r < chbuildRounds; r++ {
		for j := range workerSets {
			// Alternate run order across rounds so frequency ramp-up and
			// allocator state do not bias one configuration.
			i := j
			if r%2 == 1 {
				i = len(workerSets) - 1 - j
			}
			var bs ch.BuildStats
			start := time.Now()
			h := ch.Build(g, ch.Options{Workers: results[i].Workers, Stats: &bs})
			ms := float64(time.Since(start).Microseconds()) / 1000
			if ms < results[i].BuildMs {
				results[i].BuildMs = ms
			}
			results[i].Shortcuts = h.NumShortcuts
			results[i].Batches = bs.Batches
			results[i].AvgBatch = bs.AvgBatch()
			results[i].MaxBatch = bs.MaxBatch
			results[i].WitnessSearches = bs.WitnessSearches
		}
	}
	rep := CHBuildReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Instance:  preset + "/dfs",
		N:         g.NumVertices(),
		M:         g.NumArcs(),
		Results:   results,
	}
	seq, par := results[0], results[len(results)-1]
	rep.SpeedupParallel = seq.BuildMs / par.BuildMs
	rep.ShortcutRatio = float64(par.Shortcuts) / float64(seq.Shortcuts)
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("chbuild workers=%-3d %10.0f ms %9d shortcuts %6d batches (avg %6.1f) %9d witness searches\n",
			r.Workers, r.BuildMs, r.Shortcuts, r.Batches, r.AvgBatch, r.WitnessSearches)
	}
	fmt.Printf("chbuild speedup: %.3fx at %d workers, shortcut ratio %.4f (gate: not slower than sequential ×%.2f, drift ≤ 5%%)\n",
		rep.SpeedupParallel, par.Workers, rep.ShortcutRatio, tolerance)

	if rep.ShortcutRatio > 1.05 || rep.ShortcutRatio < 0.95 {
		return fmt.Errorf("parallel build shortcut count drifted: ratio %.4f (gate 5%%)", rep.ShortcutRatio)
	}
	if len(workerSets) == 1 {
		fmt.Println("chbuild: single-CPU host, speedup gate skipped")
		return nil
	}
	if par.BuildMs > seq.BuildMs*tolerance {
		return fmt.Errorf("parallel build (%d workers) is %.3fx sequential time (tolerance %.2f)",
			par.Workers, par.BuildMs/seq.BuildMs, tolerance)
	}
	return nil
}

// SchedResult is one measured scheduler configuration.
type SchedResult struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTree   float64 `json:"ns_per_tree"`
	ModeledGBps float64 `json:"modeled_gbps"`
}

// SchedReport is the BENCH_5.json schema: the persistent-scheduler gate.
type SchedReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// Workers is the worker count of the pooled-vs-fork-join comparison:
	// max(2, NumCPU), so the scheduling machinery engages even on a
	// single-CPU host (two goroutines timeslicing one core).
	Workers int `json:"workers"`
	// RatioTree and RatioMulti are pooled time over fork-join time (<1
	// means the persistent scheduler wins); the gate fails when either
	// exceeds the sched tolerance.
	RatioTree  float64 `json:"ratio_pooled_vs_forkjoin_tree"`
	RatioMulti float64 `json:"ratio_pooled_vs_forkjoin_multi_k16"`
	// SpeedupParallel is one-worker time over pooled NumCPU-worker time
	// for the single-tree sweep (>1 means parallelism pays); 0 when the
	// half was skipped on a single-CPU host.
	SpeedupParallel float64       `json:"speedup_parallel_tree"`
	Results         []SchedResult `json:"results"`
}

func schedEngine(h *ch.Hierarchy, workers int, forkJoin bool) (*core.Engine, error) {
	return core.NewEngine(h, core.Options{Mode: core.SweepReordered, Workers: workers, ForkJoinSweep: forkJoin})
}

// benchTreeParallel times parallel single-tree sweeps.
func benchTreeParallel(e *core.Engine, sources []int32) (float64, float64) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.TreeParallel(sources[i%len(sources)])
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(1)*int64(r.N), r.T)
}

// benchMultiParallel times parallel k-tree sweeps (one op grows k trees).
func benchMultiParallel(e *core.Engine, sources []int32, k int) (float64, float64) {
	batch := make([]int32, k)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range batch {
				batch[j] = sources[(i*k+j)%len(sources)]
			}
			e.MultiTreeParallel(batch, false)
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(k)*int64(r.N), r.T)
}

// measureSched runs `rounds` interleaved fresh-engine A/B rounds of fn
// over the pooled scheduler and the fork-join oracle at the same worker
// count, returning each side's best cell.
func measureSched(h *ch.Hierarchy, name string, workers, k int, warm []int32,
	fn func(e *core.Engine) (float64, float64)) (pooled, fj SchedResult, err error) {
	pooled = SchedResult{Name: name + "_pooled", Workers: workers, NsPerOp: math.Inf(1)}
	fj = SchedResult{Name: name + "_forkjoin", Workers: workers, NsPerOp: math.Inf(1)}
	for r := 0; r < rounds; r++ {
		variants := []bool{false, true} // forkJoin flag
		if r%2 == 1 {                   // alternate construction and run order
			variants[0], variants[1] = variants[1], variants[0]
		}
		for _, forkJoin := range variants {
			e, err := schedEngine(h, workers, forkJoin)
			if err != nil {
				return pooled, fj, err
			}
			e.TreeParallel(warm[0]) // pay first-touch faults outside the timer
			ns, gbps := fn(e)
			res := &pooled
			if forkJoin {
				res = &fj
			}
			if ns < res.NsPerOp {
				res.NsPerOp = ns
				res.NsPerTree = ns / float64(k)
				res.ModeledGBps = gbps
			}
		}
	}
	return pooled, fj, nil
}

func runSched(out, preset string, tolerance float64) error {
	g, h, sources, err := buildFixture(roadnet.Preset(preset))
	if err != nil {
		return err
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	rep := SchedReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Instance:  preset + "/dfs",
		N:         g.NumVertices(),
		M:         g.NumArcs(),
		Workers:   workers,
	}

	pt, ft, err := measureSched(h, "Sched_Tree", workers, 1, sources,
		func(e *core.Engine) (float64, float64) { return benchTreeParallel(e, sources) })
	if err != nil {
		return err
	}
	pm, fm, err := measureSched(h, "Sched_MultiTree_k16", workers, 16, sources,
		func(e *core.Engine) (float64, float64) { return benchMultiParallel(e, sources, 16) })
	if err != nil {
		return err
	}
	rep.Results = []SchedResult{pt, ft, pm, fm}
	rep.RatioTree = pt.NsPerTree / ft.NsPerTree
	rep.RatioMulti = pm.NsPerTree / fm.NsPerTree

	// Speedup half: pooled at NumCPU workers against a single worker
	// (the sequential kernels). Meaningless when there is one CPU.
	if runtime.NumCPU() > 1 {
		one, err := schedEngine(h, 1, false)
		if err != nil {
			return err
		}
		one.TreeParallel(sources[0])
		seqNs, seqGBps := benchTreeParallel(one, sources)
		seq := SchedResult{Name: "Sched_Tree_1worker", Workers: 1,
			NsPerOp: seqNs, NsPerTree: seqNs, ModeledGBps: seqGBps}
		rep.Results = append(rep.Results, seq)
		rep.SpeedupParallel = seq.NsPerTree / pt.NsPerTree
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-28s w=%-3d %12.0f ns/op %12.0f ns/tree %8.2f modeled GB/s\n",
			r.Name, r.Workers, r.NsPerOp, r.NsPerTree, r.ModeledGBps)
	}
	fmt.Printf("sched pooled/forkjoin: %.3fx single-tree, %.3fx multi k=16 (gate: ratio ≤ %.2f)\n",
		rep.RatioTree, rep.RatioMulti, tolerance)
	if rep.SpeedupParallel > 0 {
		fmt.Printf("sched parallel speedup: %.3fx at %d workers over 1\n", rep.SpeedupParallel, workers)
	} else {
		fmt.Println("sched: single-CPU host, parallel speedup half skipped")
	}

	if rep.RatioTree > tolerance {
		return fmt.Errorf("pooled single-tree sweep is %.3fx fork-join time (tolerance %.2f)", rep.RatioTree, tolerance)
	}
	if rep.RatioMulti > tolerance {
		return fmt.Errorf("pooled multi-tree sweep is %.3fx fork-join time (tolerance %.2f)", rep.RatioMulti, tolerance)
	}
	return nil
}

// CustomizeResult is one measured customization-path configuration.
type CustomizeResult struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"` // min over rounds
}

// CustomizeReport is the BENCH_6.json schema: the metric-customization
// gate.
type CustomizeReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Shortcuts int    `json:"shortcuts"`
	Triangles int64  `json:"triangles"`
	// RatioCustomizeVsBuild is (Customize + pool-sharing engine mount)
	// time over (BuildCustomizable + engine) time; the gate fails above
	// the customize tolerance (default 0.20: rebinding a metric must
	// cost at most a fifth of the re-contraction it replaces).
	RatioCustomizeVsBuild float64 `json:"ratio_customize_vs_build"`
	// SpeedupParallel is sequential customization time over pooled
	// NumCPU-worker customization time; 0 when skipped on a single-CPU
	// host.
	SpeedupParallel float64           `json:"speedup_parallel"`
	Results         []CustomizeResult `json:"results"`
}

// customizeRounds is how many measurements the (cheap) customization
// side gets; the expensive build side reuses chbuildRounds.
const customizeRounds = 5

func runCustomize(out, preset string, maxRatio float64) error {
	g, err := fixtureGraph(roadnet.Preset(preset))
	if err != nil {
		return err
	}
	// Build side: full from-scratch customizable preprocessing plus a
	// fresh engine — what serving a new metric would cost without the
	// topology/metric split.
	buildMs := math.Inf(1)
	var topo *ch.Topology
	for r := 0; r < chbuildRounds; r++ {
		start := time.Now()
		tp, err := ch.BuildCustomizable(g, ch.Options{})
		if err != nil {
			return err
		}
		if _, err := core.NewEngine(tp.Hierarchy(), core.Options{Mode: core.SweepReordered, Workers: 1}); err != nil {
			return err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < buildMs {
			buildMs = ms
		}
		topo = tp
	}
	base, err := core.NewEngine(topo.Hierarchy(), core.Options{Mode: core.SweepReordered, Workers: runtime.NumCPU()})
	if err != nil {
		return err
	}

	// Sanity: rebinding the reference metric must reproduce the
	// reference hierarchy's weights bit for bit.
	ref := make([]uint32, g.NumArcs())
	for i, a := range g.ArcList() {
		ref[i] = a.Weight
	}
	hRef, err := topo.Customize(ref, ch.CustomizeOptions{})
	if err != nil {
		return err
	}
	if !hRef.Up.Equal(topo.Hierarchy().Up) || !hRef.Down.Equal(topo.Hierarchy().Down) {
		return fmt.Errorf("customize: reference metric did not reproduce the reference hierarchy")
	}

	// Customize side: a perturbed metric (halved weights — any valid
	// vector, the pass is metric-oblivious) rebound and mounted as a
	// sibling engine sharing the sweep layout and worker pool.
	w := make([]uint32, len(ref))
	for i, x := range ref {
		w[i] = x / 2
	}
	custMs := math.Inf(1)
	for r := 0; r < customizeRounds; r++ {
		start := time.Now()
		h2, err := topo.Customize(w, ch.CustomizeOptions{Epoch: int64(r + 1)})
		if err != nil {
			return err
		}
		if _, err := core.NewEngineSharingPool(base, h2); err != nil {
			return err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < custMs {
			custMs = ms
		}
	}

	rep := CustomizeReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Instance:  preset + "/dfs",
		N:         g.NumVertices(),
		M:         g.NumArcs(),
		Shortcuts: topo.Hierarchy().NumShortcuts,
		Triangles: topo.NumTriangles(),
		Results: []CustomizeResult{
			{Name: "BuildCustomizable_plus_engine", Ms: buildMs},
			{Name: "Customize_plus_engine", Ms: custMs},
		},
	}
	rep.RatioCustomizeVsBuild = custMs / buildMs

	// Parallel half: the same customization on the persistent worker
	// pool. Meaningless when there is one CPU.
	if runtime.NumCPU() > 1 {
		parMs := math.Inf(1)
		for r := 0; r < customizeRounds; r++ {
			var st ch.CustomizeStats
			start := time.Now()
			if _, err := topo.Customize(w, ch.CustomizeOptions{Pool: base.SchedPool(), Stats: &st}); err != nil {
				return err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < parMs && st.Parallel {
				parMs = ms
			}
		}
		rep.Results = append(rep.Results, CustomizeResult{Name: "Customize_parallel", Ms: parMs})
		// Sequential customize alone (no engine mount) for a like-for-like
		// speedup denominator.
		seqMs := math.Inf(1)
		for r := 0; r < customizeRounds; r++ {
			start := time.Now()
			if _, err := topo.Customize(w, ch.CustomizeOptions{}); err != nil {
				return err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < seqMs {
				seqMs = ms
			}
		}
		rep.Results = append(rep.Results, CustomizeResult{Name: "Customize_sequential", Ms: seqMs})
		rep.SpeedupParallel = seqMs / parMs
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.2f ms\n", r.Name, r.Ms)
	}
	fmt.Printf("customize/build ratio: %.4f over %d shortcuts, %d triangles (gate: ≤ %.2f)\n",
		rep.RatioCustomizeVsBuild, rep.Shortcuts, rep.Triangles, maxRatio)
	if rep.SpeedupParallel > 0 {
		fmt.Printf("customize parallel speedup: %.3fx at %d workers\n", rep.SpeedupParallel, runtime.NumCPU())
	} else {
		fmt.Println("customize: single-CPU host, parallel speedup half skipped")
	}

	if rep.RatioCustomizeVsBuild > maxRatio {
		return fmt.Errorf("customization is %.3fx a full rebuild (tolerance %.2f)", rep.RatioCustomizeVsBuild, maxRatio)
	}
	return nil
}

// StreamResult is one measured stream-layout cell.
type StreamResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerTree    float64 `json:"ns_per_tree"`
	ModeledGBps  float64 `json:"modeled_gbps"`
	StreamBytes  int64   `json:"stream_bytes"`
	BytesPerVert float64 `json:"bytes_per_vertex"`
	StreamRatio  float64 `json:"stream_ratio"` // vs the uncompressed packed stream
}

// StreamReport is the BENCH_7.json schema: the compressed-stream gate.
type StreamReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// BytesRatio is compressed stream bytes over packed stream bytes —
	// the space half of the gate (must stay ≤ the bytes tolerance).
	BytesRatio float64 `json:"bytes_ratio"`
	// RatioTree/RatioMulti are compressed ns/tree over packed ns/tree —
	// the time half of the gate. The single tree must stay ≤ the stream
	// tolerance; the k=16 multi ratio gets its own slightly looser gate
	// (default 1.08) because at k=16 the k·n label streams dominate and
	// the graph stream is a sliver, so the ratio is noisier. The
	// decode-once lane-major kernels hold the compressed multi sweep
	// within a few percent of packed, so a breach past 8% means the
	// kernel family regressed, not the noise floor.
	RatioTree  float64 `json:"ratio_tree"`
	RatioMulti float64 `json:"ratio_multi_k16"`
	// ShapeHistogram counts compressed blocks per header shape
	// ("d8w16" = 1-byte deltas, 2-byte weights). The decode-once
	// kernels specialize the four narrow shapes with constant shifts;
	// read a ratio regression against this mix — more generic-shape
	// blocks means slower decode at the same byte count.
	ShapeHistogram map[string]int `json:"shape_histogram"`
	Results        []StreamResult `json:"results"`
}

// runStream gates the compressed sweep layout against its packed twin:
// the compressed stream must be substantially smaller (bytes ratio) and
// the single-tree sweep over it must not be materially slower (time
// ratio) — decoding varints must be cheaper than the bandwidth saved,
// or at worst nearly free.
func runStream(out, preset string, timeTolerance, bytesTolerance, multiTolerance float64) error {
	g, h, sources, err := buildFixture(roadnet.Preset(preset))
	if err != nil {
		return err
	}
	mk := func(compressed bool) (*core.Engine, error) {
		return core.NewEngine(h, core.Options{Mode: core.SweepReordered, Workers: 1, CompressedSweep: compressed})
	}
	z := StreamResult{Name: "Stream_compressed_tree", NsPerOp: math.Inf(1)}
	p := StreamResult{Name: "Stream_packed_tree", NsPerOp: math.Inf(1)}
	zm := StreamResult{Name: "Stream_compressed_multi_k16", NsPerOp: math.Inf(1)}
	pm := StreamResult{Name: "Stream_packed_multi_k16", NsPerOp: math.Inf(1)}
	for r := 0; r < rounds; r++ {
		variants := []bool{true, false}
		if r%2 == 1 { // alternate construction and run order
			variants[0], variants[1] = variants[1], variants[0]
		}
		for _, compressed := range variants {
			e, err := mk(compressed)
			if err != nil {
				return err
			}
			e.Tree(sources[0]) // pay first-touch faults outside the timer
			ns, gbps := benchTree(e, sources)
			nsm, gbpsm := benchMulti(e, sources, 16)
			tree, multi := &p, &pm
			if compressed {
				tree, multi = &z, &zm
			}
			if ns < tree.NsPerOp {
				tree.NsPerOp, tree.NsPerTree, tree.ModeledGBps = ns, ns, gbps
				tree.StreamBytes = e.StreamBytes()
				tree.BytesPerVert = float64(e.StreamBytes()) / float64(g.NumVertices())
				tree.StreamRatio = e.CompressionRatio()
			}
			if nsm < multi.NsPerOp {
				multi.NsPerOp, multi.NsPerTree, multi.ModeledGBps = nsm, nsm/16, gbpsm
				multi.StreamBytes = e.StreamBytes()
				multi.BytesPerVert = float64(e.StreamBytes()) / float64(g.NumVertices())
				multi.StreamRatio = e.CompressionRatio()
			}
		}
	}

	// One more compressed engine purely for the shape histogram — the
	// timed engines above were discarded as the rounds alternated.
	ze, err := mk(true)
	if err != nil {
		return err
	}
	rep := StreamReport{
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		Instance:       preset + "/dfs",
		N:              g.NumVertices(),
		M:              g.NumArcs(),
		BytesRatio:     float64(z.StreamBytes) / float64(p.StreamBytes),
		RatioTree:      z.NsPerTree / p.NsPerTree,
		RatioMulti:     zm.NsPerTree / pm.NsPerTree,
		ShapeHistogram: ze.StreamShapeHistogram(),
		Results:        []StreamResult{z, p, zm, pm},
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.0f ns/op %12.0f ns/tree %8.2f modeled GB/s %8.1f B/vertex\n",
			r.Name, r.NsPerOp, r.NsPerTree, r.ModeledGBps, r.BytesPerVert)
	}
	fmt.Printf("stream bytes ratio: %.3f (gate: ≤ %.2f); time ratio: %.3fx single-tree (gate: ≤ %.2f), %.3fx multi k=16 (gate: ≤ %.2f)\n",
		rep.BytesRatio, bytesTolerance, rep.RatioTree, timeTolerance, rep.RatioMulti, multiTolerance)

	if rep.BytesRatio > bytesTolerance {
		return fmt.Errorf("compressed stream is %.3fx packed bytes (tolerance %.2f)", rep.BytesRatio, bytesTolerance)
	}
	if rep.RatioTree > timeTolerance {
		return fmt.Errorf("compressed single-tree sweep is %.3fx packed time (tolerance %.2f)", rep.RatioTree, timeTolerance)
	}
	if rep.RatioMulti > multiTolerance {
		return fmt.Errorf("compressed k=16 multi-tree sweep is %.3fx packed time (tolerance %.2f)", rep.RatioMulti, multiTolerance)
	}
	return nil
}

// SnapshotReport is the BENCH_8.json schema: the zero-copy cold-start
// gate and the sharded-serving latency gate.
type SnapshotReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// SnapshotBytes is the on-disk size of the saved engine.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BuildMs is one fresh preprocess (CH contraction + engine) — the
	// cold start a process pays without a snapshot. SaveMs is the
	// one-time serialization cost. LoadMs is the mmap restore, ReadMs
	// the heap-fallback restore (both min over rounds).
	BuildMs float64 `json:"build_ms"`
	SaveMs  float64 `json:"save_ms"`
	LoadMs  float64 `json:"load_ms"`
	ReadMs  float64 `json:"read_ms"`
	// SpeedupColdStart is BuildMs/LoadMs — the point of the snapshot
	// layer; the gate fails below the snapshot speedup floor (default
	// 50x: validation must stay bounded by page mapping, not rebuild).
	SpeedupColdStart float64 `json:"speedup_cold_start"`
	// Shards is K of the sharded half. MonoTreeNs is the monolithic
	// engine's full single-tree sweep; ShardDistNs is a sharded routed
	// distance (upward search + one cell-restricted sweep, ~n/K work).
	// RatioShardVsMono is the latter over the former — the gate fails
	// above the shard tolerance (default 1.10: serving a single-target
	// query from a shard must not cost more than a full monolithic
	// tree, with 10% slack for dispatch overhead).
	Shards           int     `json:"shards"`
	MonoTreeNs       float64 `json:"mono_tree_ns"`
	ShardDistNs      float64 `json:"shard_dist_ns"`
	RatioShardVsMono float64 `json:"ratio_shard_vs_mono"`
	// ShardTreeNs is the cross-shard scatter-gathered full tree and
	// SelectionSum the total selected vertices across cells (vs N for
	// one monolithic sweep) — the redundancy a cut pays; recorded, not
	// gated (both are properties of the partition, not regressions).
	ShardTreeNs  float64 `json:"shard_tree_ns"`
	SelectionSum int     `json:"selection_sum"`
}

// runSnapshot gates the snapshot layer end to end through the public
// API: preprocess once (the expensive baseline), save, then restore by
// mmap and by heap read; the mmap restore must beat the rebuild by the
// speedup floor. On top, a sharded front over the restored engine must
// answer routed single-target queries within the shard tolerance of
// one monolithic tree sweep.
func runSnapshot(out, preset string, minSpeedup, shardTolerance float64, shards int) error {
	g, err := fixtureGraph(roadnet.Preset(preset))
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchsmoke-snap-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/engine.snap"

	buildStart := time.Now()
	eng, err := phast.Preprocess(g, &phast.Options{SweepWorkers: 1})
	if err != nil {
		return err
	}
	buildMs := float64(time.Since(buildStart).Microseconds()) / 1000

	saveStart := time.Now()
	if err := eng.SaveSnapshotFile(path); err != nil {
		return err
	}
	saveMs := float64(time.Since(saveStart).Microseconds()) / 1000
	st, err := os.Stat(path)
	if err != nil {
		return err
	}

	// Restores are cheap enough to measure min-of-rounds; the loaded
	// engine must actually serve (one tree) so a restore that defers
	// faults cannot cheat the timer entirely — the warm sweep is inside
	// the timed region.
	loadMs, readMs := math.Inf(1), math.Inf(1)
	var loaded *phast.Engine
	for r := 0; r < rounds; r++ {
		start := time.Now()
		le, err := phast.LoadSnapshot(path, &phast.Options{SweepWorkers: 1})
		if err != nil {
			return err
		}
		le.Tree(0)
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < loadMs {
			loadMs = ms
		}
		loaded = le

		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		start = time.Now()
		re, err := phast.ReadSnapshot(bytes.NewReader(raw), &phast.Options{SweepWorkers: 1})
		if err != nil {
			return err
		}
		re.Tree(0)
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < readMs {
			readMs = ms
		}
	}

	// Sharded half over the mmap-restored engine.
	srv, err := loaded.ServeSharded(&phast.ShardedServeOptions{Shards: shards, Seed: 7})
	if err != nil {
		return err
	}
	defer srv.Close()
	rng := rand.New(rand.NewSource(7))
	n := g.NumVertices()
	pairs := make([][2]int32, 64)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	mono := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loaded.Tree(pairs[i%len(pairs)][0])
		}
	})
	dist := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := srv.Distance(nil, p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	tree := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := srv.Tree(nil, pairs[i%len(pairs)][0])
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
	})
	selSum := 0
	for _, s := range srv.SelectionSizes() {
		selSum += s
	}

	rep := SnapshotReport{
		GoVersion:        runtime.Version(),
		GOARCH:           runtime.GOARCH,
		Instance:         preset + "/dfs",
		N:                n,
		M:                g.NumArcs(),
		SnapshotBytes:    st.Size(),
		BuildMs:          buildMs,
		SaveMs:           saveMs,
		LoadMs:           loadMs,
		ReadMs:           readMs,
		SpeedupColdStart: buildMs / loadMs,
		Shards:           shards,
		MonoTreeNs:       float64(mono.NsPerOp()),
		ShardDistNs:      float64(dist.NsPerOp()),
		RatioShardVsMono: float64(dist.NsPerOp()) / float64(mono.NsPerOp()),
		ShardTreeNs:      float64(tree.NsPerOp()),
		SelectionSum:     selSum,
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot: %d bytes; build %.1f ms, save %.1f ms, mmap load %.2f ms, heap read %.2f ms\n",
		rep.SnapshotBytes, rep.BuildMs, rep.SaveMs, rep.LoadMs, rep.ReadMs)
	fmt.Printf("snapshot cold-start speedup: %.0fx (gate: ≥ %.0f)\n", rep.SpeedupColdStart, minSpeedup)
	fmt.Printf("sharded k=%d: routed distance %.0f ns vs monolithic tree %.0f ns (ratio %.3f, gate: ≤ %.2f); cross-shard tree %.0f ns, Σ|selection| %d (n=%d)\n",
		shards, rep.ShardDistNs, rep.MonoTreeNs, rep.RatioShardVsMono, shardTolerance, rep.ShardTreeNs, rep.SelectionSum, n)

	if rep.SpeedupColdStart < minSpeedup {
		return fmt.Errorf("mmap cold start is only %.1fx faster than rebuild (floor %.0f)", rep.SpeedupColdStart, minSpeedup)
	}
	if rep.RatioShardVsMono > shardTolerance {
		return fmt.Errorf("sharded routed distance is %.3fx a monolithic tree (tolerance %.2f)", rep.RatioShardVsMono, shardTolerance)
	}
	return nil
}

func main() {
	var (
		mode = flag.String("mode", "all", "which gates to run: sweep, chbuild, or all")
		out  = flag.String("out", "BENCH_3.json", "sweep report path")
		// 1.15 rather than a tight 1.02: shared CI hosts show ±10%
		// run-to-run jitter even with interleaved fresh-engine rounds,
		// and the gates exist to catch real regressions (packed suddenly
		// 2x slower, parallel build losing to sequential), not to flake
		// on scheduler noise. The recorded ratios in the reports carry
		// the actual measurements.
		tolerance  = flag.Float64("tolerance", 1.15, "max allowed packed/legacy (or parallel/sequential) time ratio before failing")
		chbuildOut = flag.String("chbuild-out", "BENCH_4.json", "chbuild report path")
		schedOut   = flag.String("sched-out", "BENCH_5.json", "sched report path")
		// The sched gate compares two parallel drivers over identical
		// kernels, so run-to-run jitter is smaller than the packed/legacy
		// comparison's; 1.10 keeps the pooled scheduler honestly at least
		// as fast as the barrier code it replaced.
		schedTolerance = flag.Float64("sched-tolerance", 1.10, "max allowed pooled/fork-join time ratio before failing")
		preset         = flag.String("preset", "europe-m", "roadnet instance preset")
		customizeOut   = flag.String("customize-out", "BENCH_6.json", "customize report path")
		// 0.20: customization must cost at most a fifth of the full
		// re-contraction it replaces; measured ratios run well under 1%,
		// so this gate has enormous slack against jitter while still
		// catching a customization path that degenerated to rebuild cost.
		customizeTolerance = flag.Float64("customize-tolerance", 0.20, "max allowed customize/build time ratio before failing")
		// europe-xs, not -preset: the baseline side (all-pairs rebuild)
		// is minutes-long at europe-m — see the package comment.
		customizePreset = flag.String("customize-preset", "europe-xs", "roadnet preset for the customize gate")
		streamOut       = flag.String("stream-out", "BENCH_7.json", "stream report path")
		// 1.10: the compressed kernels decode varints inline, so some
		// overhead is tolerable — but more than 10% over packed means the
		// decode cost ate the bandwidth win and the layout regressed.
		streamTolerance = flag.Float64("stream-tolerance", 1.10, "max allowed compressed/packed single-tree time ratio before failing")
		// 0.75: the compressed stream must actually compress — delta+varint
		// heads and narrow weights run well under this on road networks.
		streamBytesRatio = flag.Float64("stream-bytes-ratio", 0.75, "max allowed compressed/packed stream byte ratio before failing")
		// 1.08: at k=16 the graph stream is a sliver of the traffic, so
		// the ratio is noisier than the single-tree one — but the
		// decode-once lane-major kernels measure ~1.05x on europe-m, so
		// 8% covers the jitter while still catching any regression back
		// toward the old vertex-major kernels' ~1.15x.
		streamMultiTolerance = flag.Float64("stream-multi-tolerance", 1.08, "max allowed compressed/packed k=16 multi-tree time ratio before failing")
		snapshotOut          = flag.String("snapshot-out", "BENCH_8.json", "snapshot report path")
		// 50: restoring from a snapshot must be a different complexity
		// class than rebuilding — page mapping plus validation versus a
		// full CH contraction. Measured speedups run in the hundreds at
		// europe-m; 50 leaves room for slow filesystems.
		snapshotSpeedup = flag.Float64("snapshot-speedup", 50, "min allowed build/load cold-start speedup before failing")
		// 1.10: a routed single-target query (one cell-restricted sweep,
		// ~n/K work) must never cost more than the full monolithic tree
		// it replaces, modulo 10% dispatch overhead.
		snapshotShardTolerance = flag.Float64("snapshot-shard-tolerance", 1.10, "max allowed sharded-distance/monolithic-tree time ratio before failing")
		snapshotShards         = flag.Int("snapshot-shards", 4, "shard count K of the sharded serving half")
	)
	flag.Parse()
	runs := map[string]func() error{
		"sweep":     func() error { return runSweep(*out, *preset, *tolerance) },
		"chbuild":   func() error { return runCHBuild(*chbuildOut, *preset, *tolerance) },
		"sched":     func() error { return runSched(*schedOut, *preset, *schedTolerance) },
		"customize": func() error { return runCustomize(*customizeOut, *customizePreset, *customizeTolerance) },
		"stream": func() error {
			return runStream(*streamOut, *preset, *streamTolerance, *streamBytesRatio, *streamMultiTolerance)
		},
		"snapshot": func() error {
			return runSnapshot(*snapshotOut, *preset, *snapshotSpeedup, *snapshotShardTolerance, *snapshotShards)
		},
	}
	var selected []func() error
	switch *mode {
	case "all":
		selected = []func() error{runs["sweep"], runs["chbuild"], runs["sched"], runs["customize"], runs["stream"], runs["snapshot"]}
	case "sweep", "chbuild", "sched", "customize", "stream", "snapshot":
		selected = []func() error{runs[*mode]}
	default:
		fmt.Fprintf(os.Stderr, "benchsmoke: unknown -mode %q (sweep, chbuild, sched, customize, stream, snapshot, all)\n", *mode)
		os.Exit(2)
	}
	for _, fn := range selected {
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
			os.Exit(1)
		}
	}
}
