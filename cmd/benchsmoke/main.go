// Command benchsmoke is the CI benchmark smoke check for the packed
// single-stream sweep layout: it times the packed kernels against their
// legacy CSR+mark twins on the europe-xs benchmark fixture (same DFS
// layout and source stream as the root bench_test.go), writes the
// numbers to a JSON report (BENCH_3.json at the repo root), and exits
// non-zero if the packed sweep is slower than legacy beyond the
// tolerance — the regression gate for the layout's reason to exist.
//
// Usage:
//
//	benchsmoke                       write BENCH_3.json, gate at 1.05
//	benchsmoke -out report.json -tolerance 1.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"phast/internal/bandwidth"
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/graph"
	"phast/internal/layout"
	"phast/internal/roadnet"
)

// Result is one measured benchmark cell.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTree   float64 `json:"ns_per_tree"`
	ModeledGBps float64 `json:"modeled_gbps"`
}

// Report is the BENCH_3.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Instance  string `json:"instance"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// SpeedupTree is legacy ns/tree divided by packed ns/tree for the
	// single-tree sweep (>1 means the packed stream wins); SpeedupMulti
	// is the same ratio for the k=16 multi-tree sweep.
	SpeedupTree  float64  `json:"speedup_tree"`
	SpeedupMulti float64  `json:"speedup_multi_k16"`
	Results      []Result `json:"results"`
}

func buildFixture(preset roadnet.Preset) (*graph.Graph, *ch.Hierarchy, []int32, error) {
	net, err := roadnet.GeneratePreset(preset, roadnet.TravelTime)
	if err != nil {
		return nil, nil, nil, err
	}
	perm := layout.DFS(net.Graph, 0)
	g, err := net.Graph.Permute(perm)
	if err != nil {
		return nil, nil, nil, err
	}
	h := ch.Build(g, ch.Options{})
	rng := rand.New(rand.NewSource(7))
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.NumVertices()))
	}
	return g, h, sources, nil
}

func engine(h *ch.Hierarchy, packed core.PackedSetting) (*core.Engine, error) {
	return core.NewEngine(h, core.Options{Mode: core.SweepReordered, Workers: 1, PackedSweep: packed})
}

// rounds is how many interleaved A/B measurements each cell gets; the
// per-cell minimum is reported. Each round constructs FRESH engines
// (alternating which variant allocates first) so allocation placement,
// CPU frequency ramp-up, and run order all vary across rounds instead
// of biasing every measurement the same way.
const rounds = 3

// benchTree times single-tree sweeps once and returns ns/op plus the
// modeled bandwidth at that speed.
func benchTree(e *core.Engine, sources []int32) (float64, float64) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Tree(sources[i%len(sources)])
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(1)*int64(r.N), r.T)
}

// benchMulti times k-tree sweeps once (one op grows k trees).
func benchMulti(e *core.Engine, sources []int32, k int) (float64, float64) {
	batch := make([]int32, k)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range batch {
				batch[j] = sources[(i*k+j)%len(sources)]
			}
			e.MultiTree(batch, false)
		}
	})
	return float64(r.NsPerOp()), bandwidth.GBps(e.SweepBytes(k)*int64(r.N), r.T)
}

// measure runs `rounds` fresh-engine A/B rounds of fn and returns each
// variant's best cell.
func measure(h *ch.Hierarchy, name string, k int, warm []int32,
	fn func(e *core.Engine) (float64, float64)) (p, l Result, err error) {
	p = Result{Name: name + "_packed", NsPerOp: math.Inf(1)}
	l = Result{Name: name + "_legacy", NsPerOp: math.Inf(1)}
	for r := 0; r < rounds; r++ {
		settings := []core.PackedSetting{core.PackedOn, core.PackedOff}
		if r%2 == 1 { // alternate construction and run order
			settings[0], settings[1] = settings[1], settings[0]
		}
		for _, setting := range settings {
			e, err := engine(h, setting)
			if err != nil {
				return p, l, err
			}
			e.Tree(warm[0]) // pay first-touch faults outside the timer
			ns, gbps := fn(e)
			res := &p
			if setting == core.PackedOff {
				res = &l
			}
			if ns < res.NsPerOp {
				res.NsPerOp = ns
				res.NsPerTree = ns / float64(k)
				res.ModeledGBps = gbps
			}
		}
	}
	return p, l, nil
}

func run() error {
	var (
		out = flag.String("out", "BENCH_3.json", "report path")
		// 1.15 rather than a tight 1.02: shared CI hosts show ±10%
		// run-to-run jitter even with interleaved fresh-engine rounds,
		// and the gate exists to catch real regressions (packed
		// suddenly 2x slower), not to flake on scheduler noise. The
		// recorded speedup ratios in the report carry the actual
		// measurement.
		tolerance = flag.Float64("tolerance", 1.15, "max allowed packed/legacy time ratio before failing")
		preset    = flag.String("preset", "europe-m", "roadnet instance preset")
	)
	flag.Parse()

	g, h, sources, err := buildFixture(roadnet.Preset(*preset))
	if err != nil {
		return err
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Instance:  *preset + "/dfs",
		N:         g.NumVertices(),
		M:         g.NumArcs(),
	}
	pt, lt, err := measure(h, "Table1_PHASTReordered", 1, sources,
		func(e *core.Engine) (float64, float64) { return benchTree(e, sources) })
	if err != nil {
		return err
	}
	pm, lm, err := measure(h, "Table2_MultiTree_k16", 16, sources,
		func(e *core.Engine) (float64, float64) { return benchMulti(e, sources, 16) })
	if err != nil {
		return err
	}
	rep.Results = []Result{pt, lt, pm, lm}
	rep.SpeedupTree = lt.NsPerTree / pt.NsPerTree
	rep.SpeedupMulti = lm.NsPerTree / pm.NsPerTree

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.0f ns/op %12.0f ns/tree %8.2f modeled GB/s\n",
			r.Name, r.NsPerOp, r.NsPerTree, r.ModeledGBps)
	}
	fmt.Printf("packed speedup: %.3fx single-tree, %.3fx multi k=16 (gate: ratio ≤ %.2f)\n",
		rep.SpeedupTree, rep.SpeedupMulti, *tolerance)

	if ratio := pt.NsPerTree / lt.NsPerTree; ratio > *tolerance {
		return fmt.Errorf("packed single-tree sweep is %.3fx legacy time (tolerance %.2f)", ratio, *tolerance)
	}
	if ratio := pm.NsPerTree / lm.NsPerTree; ratio > *tolerance {
		return fmt.Errorf("packed multi-tree sweep is %.3fx legacy time (tolerance %.2f)", ratio, *tolerance)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}
