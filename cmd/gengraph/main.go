// Command gengraph writes a synthetic road network as a DIMACS .gr file
// (and optionally its coordinates as a .co file), so the instances used
// by this reproduction can be inspected or fed to other tools.
//
// Usage:
//
//	gengraph -preset europe-s -o europe-s.gr -co europe-s.co
//	gengraph -width 256 -height 256 -seed 7 -metric distance -o g.gr
package main

import (
	"flag"
	"fmt"
	"os"

	"phast"
	"phast/internal/dimacs"
	"phast/internal/roadnet"
)

func main() {
	var (
		preset = flag.String("preset", "", "instance preset (europe-xs..usa-l); overrides -width/-height")
		width  = flag.Int("width", 128, "grid width")
		height = flag.Int("height", 128, "grid height")
		seed   = flag.Int64("seed", 1, "generator seed")
		metric = flag.String("metric", "time", "time or distance")
		out    = flag.String("o", "", "output .gr path (required)")
		coords = flag.String("co", "", "optional output .co path for coordinates")
	)
	flag.Parse()
	if err := run(*preset, *width, *height, *seed, *metric, *out, *coords); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(preset string, width, height int, seed int64, metric, out, coords string) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	m := phast.TravelTime
	switch metric {
	case "time":
	case "distance":
		m = phast.TravelDistance
	default:
		return fmt.Errorf("unknown metric %q", metric)
	}
	var (
		net *roadnet.Network
		err error
	)
	if preset != "" {
		net, err = roadnet.GeneratePreset(roadnet.Preset(preset), m)
	} else {
		net, err = roadnet.Generate(roadnet.Params{Width: width, Height: height, Seed: seed, Metric: m})
	}
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	comment := fmt.Sprintf("synthetic road network (%s metric), n=%d m=%d",
		metric, net.Graph.NumVertices(), net.Graph.NumArcs())
	if err := dimacs.WriteGraph(f, net.Graph, comment); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d arcs\n", out, net.Graph.NumVertices(), net.Graph.NumArcs())
	if coords != "" {
		cf, err := os.Create(coords)
		if err != nil {
			return err
		}
		defer cf.Close()
		cs := make([][2]int64, len(net.Coords))
		for i, c := range net.Coords {
			cs[i] = [2]int64{int64(c.X), int64(c.Y)}
		}
		if err := dimacs.WriteCoords(cf, cs); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d coordinates\n", coords, len(cs))
	}
	return nil
}
