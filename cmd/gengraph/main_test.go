package main

import (
	"os"
	"path/filepath"
	"testing"

	"phast/internal/ch"
	"phast/internal/dimacs"
)

func TestRunWritesGraphAndCoords(t *testing.T) {
	dir := t.TempDir()
	gr := filepath.Join(dir, "g.gr")
	co := filepath.Join(dir, "g.co")
	if err := run("", 16, 12, 5, "time", gr, co); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := dimacs.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.NumArcs() == 0 {
		t.Fatal("empty graph written")
	}
	cf, err := os.Open(co)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	coords, err := dimacs.ReadCoords(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != g.NumVertices() {
		t.Fatalf("coords %d, vertices %d", len(coords), g.NumVertices())
	}
}

func TestRunPreset(t *testing.T) {
	dir := t.TempDir()
	gr := filepath.Join(dir, "p.gr")
	if err := run("europe-xs", 0, 0, 0, "distance", gr, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gr); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 8, 8, 1, "time", "", ""); err == nil {
		t.Fatal("missing -o accepted")
	}
	if err := run("", 8, 8, 1, "bogus", "x.gr", ""); err == nil {
		t.Fatal("bad metric accepted")
	}
	if err := run("nope", 0, 0, 0, "time", "x.gr", ""); err == nil {
		t.Fatal("bad preset accepted")
	}
	if err := run("", 8, 8, 1, "time", "/nonexistent-dir/x.gr", ""); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

// TestRaceStressParallelBuild generates a mid-size grid with the tool's
// own generator and runs the batch-parallel contractor over it with
// several workers. Under -race this exercises the simulate/reprioritize
// fan-out on a realistically sized instance; in any build it checks that
// the parallel hierarchy is bit-identical to the sequential one.
func TestRaceStressParallelBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size parallel build; skipped with -short")
	}
	dir := t.TempDir()
	gr := filepath.Join(dir, "stress.gr")
	if err := run("", 56, 48, 7, "time", gr, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := dimacs.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	seq := ch.Build(g, ch.Options{Workers: 1})
	par := ch.Build(g, ch.Options{Workers: 4})
	if seq.NumShortcuts != par.NumShortcuts {
		t.Fatalf("shortcuts diverge: sequential %d, parallel %d", seq.NumShortcuts, par.NumShortcuts)
	}
	for v := range par.Rank {
		if seq.Rank[v] != par.Rank[v] {
			t.Fatalf("rank of vertex %d diverges: sequential %d, parallel %d", v, seq.Rank[v], par.Rank[v])
		}
	}
}
