// Command selfcheck cross-validates the whole PHAST stack on freshly
// generated instances: PHAST trees (sequential, parallel, multi-tree,
// simulated GPU) against Dijkstra, CH point-to-point queries, path
// unpacking, arc flags and RPHAST. It is the post-install smoke test a
// downstream user runs before trusting the library on their workload.
//
// Usage:
//
//	selfcheck                 # quick pass (~seconds)
//	selfcheck -seed 7 -trials 5 -width 48 -height 40
//
// Exit status 0 means every check passed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"phast"
	"phast/internal/pq"
	"phast/internal/sssp"
)

func main() {
	var (
		trials = flag.Int("trials", 3, "instances to generate and validate")
		width  = flag.Int("width", 28, "instance grid width")
		height = flag.Int("height", 24, "instance grid height")
		seed   = flag.Int64("seed", 1, "base seed; trial i uses seed+i")
	)
	flag.Parse()
	start := time.Now()
	if phast.CheckedBuild {
		fmt.Println("checked build: invariant validators active (phastdebug)")
	} else {
		fmt.Println("release build: invariant validators are no-ops (rebuild with -tags phastdebug for deep checks)")
	}
	for i := 0; i < *trials; i++ {
		if err := checkInstance(*width, *height, *seed+int64(i), i%2 == 1); err != nil {
			fmt.Fprintf(os.Stderr, "selfcheck: trial %d FAILED: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("trial %d ok\n", i)
	}
	fmt.Printf("selfcheck passed (%d trials, %v)\n", *trials, time.Since(start).Round(time.Millisecond))
}

func checkInstance(w, h int, seed int64, oneWay bool) error {
	params := phast.RoadParams{Width: w, Height: h, Seed: seed}
	if oneWay {
		params.OneWayProb = 0.3
	}
	net, err := phast.GenerateRoadNetwork(params)
	if err != nil {
		return err
	}
	g := net.Graph
	n := g.NumVertices()
	eng, err := phast.Preprocess(g, nil)
	if err != nil {
		return err
	}
	if err := eng.CheckInvariants(); err != nil {
		return fmt.Errorf("structural invariants: %w", err)
	}
	oracle := sssp.NewDijkstra(g, pq.KindBinaryHeap)
	rng := rand.New(rand.NewSource(seed))

	// Trees: sequential, parallel, multi-tree, GPU.
	gpu, err := eng.GPU(phast.GTX580(), 4)
	if err != nil {
		return err
	}
	sources := []int32{0, int32(rng.Intn(n)), int32(rng.Intn(n)), int32(n - 1)}
	gpu.MultiTree(sources)
	eng.MultiTree(sources, true)
	for lane, s := range sources {
		oracle.Run(s)
		clone := eng.Clone()
		clone.Tree(s)
		par := eng.Clone()
		par.TreeParallel(s)
		for v := int32(0); v < int32(n); v++ {
			want := oracle.Dist(v)
			if clone.Dist(v) != want {
				return fmt.Errorf("sequential tree wrong at src=%d v=%d", s, v)
			}
			if par.Dist(v) != want {
				return fmt.Errorf("parallel tree wrong at src=%d v=%d", s, v)
			}
			if eng.MultiDist(lane, v) != want {
				return fmt.Errorf("multi-tree lane %d wrong at v=%d", lane, v)
			}
			if gpu.Dist(lane, v) != want {
				return fmt.Errorf("GPU tree lane %d wrong at v=%d", lane, v)
			}
		}
	}

	// Point-to-point queries and unpacked paths.
	for q := 0; q < 20; q++ {
		s, t := int32(rng.Intn(n)), int32(rng.Intn(n))
		oracle.Run(s)
		want := oracle.Dist(t)
		if got := eng.Query(s, t); got != want {
			return fmt.Errorf("query (%d,%d)=%d, want %d", s, t, got, want)
		}
		if want == phast.Inf {
			continue
		}
		path := eng.QueryPath(s, t)
		if len(path) == 0 || path[0] != s || path[len(path)-1] != t {
			return fmt.Errorf("path endpoints wrong for (%d,%d)", s, t)
		}
		var sum uint32
		for i := 1; i < len(path); i++ {
			wgt, ok := g.FindArc(path[i-1], path[i])
			if !ok {
				return fmt.Errorf("path uses non-arc (%d,%d)", path[i-1], path[i])
			}
			sum += wgt
		}
		if sum != want {
			return fmt.Errorf("path length %d != distance %d", sum, want)
		}
	}

	// Arc flags.
	af, err := phast.BuildArcFlags(g, &phast.ArcFlagsOptions{Cells: 4, Seed: seed})
	if err != nil {
		return err
	}
	for q := 0; q < 10; q++ {
		s, t := int32(rng.Intn(n)), int32(rng.Intn(n))
		oracle.Run(s)
		if got := af.Query(s, t); got != oracle.Dist(t) {
			return fmt.Errorf("arc flags query (%d,%d)=%d, want %d", s, t, got, oracle.Dist(t))
		}
	}

	// RPHAST one-to-many.
	targets := []int32{int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))}
	sel, err := eng.SelectTargets(targets)
	if err != nil {
		return err
	}
	tq := sel.NewQuery()
	for q := 0; q < 5; q++ {
		s := int32(rng.Intn(n))
		tq.Run(s)
		oracle.Run(s)
		for i, tgt := range targets {
			if tq.Dist(i) != oracle.Dist(tgt) {
				return fmt.Errorf("rphast (%d,%d)=%d, want %d", s, tgt, tq.Dist(i), oracle.Dist(tgt))
			}
		}
	}
	return nil
}
