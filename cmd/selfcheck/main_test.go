package main

import "testing"

func TestCheckInstanceBidirected(t *testing.T) {
	if err := checkInstance(16, 14, 3, false); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInstanceOneWay(t *testing.T) {
	if err := checkInstance(16, 14, 4, true); err != nil {
		t.Fatal(err)
	}
}
