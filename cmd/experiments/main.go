// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VIII) on synthetic instances and prints them in
// the paper's layout. See EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	experiments                         run everything on europe-s
//	experiments -run table1,table3     run selected experiments
//	experiments -preset europe-m -sources 10
//	experiments -list                  list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phast/internal/exp"
	"phast/internal/roadnet"
)

func main() {
	var (
		preset   = flag.String("preset", "europe-s", "instance preset")
		metric   = flag.String("metric", "time", "time or distance")
		sources  = flag.Int("sources", 5, "tree sources per measurement cell")
		gpuTrees = flag.Int("gpu-trees", 2, "simulated GPU trees per cell (simulation is slow)")
		seed     = flag.Int64("seed", 42, "source sampling seed")
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		svgDir   = flag.String("svg", "", "directory for SVG figures (fig1, scaling)")
		mdOut    = flag.String("markdown", "", "also write the tables as a markdown report to this file")
	)
	flag.Parse()
	if *list {
		for _, r := range exp.Suite() {
			fmt.Printf("%-11s %s\n", r.ID, r.Desc)
		}
		return
	}
	m := roadnet.TravelTime
	if *metric == "distance" {
		m = roadnet.TravelDistance
	} else if *metric != "time" {
		fmt.Fprintf(os.Stderr, "experiments: unknown metric %q\n", *metric)
		os.Exit(1)
	}
	cfg := exp.Config{
		Preset:   roadnet.Preset(*preset),
		Metric:   m,
		Sources:  *sources,
		GPUTrees: *gpuTrees,
		Seed:     *seed,
		SVGDir:   *svgDir,
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	env, err := exp.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	var md strings.Builder
	if *mdOut != "" {
		fmt.Fprintf(&md, "# PHAST experiment report\n\ninstance: %s (%s), sources=%d, seed=%d\n\n",
			*preset, *metric, *sources, *seed)
	}
	ran := 0
	for _, r := range exp.Suite() {
		if len(selected) > 0 && !selected[r.ID] {
			continue
		}
		ran++
		t0 := time.Now()
		tables, err := r.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			fmt.Println(tbl.String())
			if *mdOut != "" {
				md.WriteString(tbl.Markdown())
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [exp] %s finished in %v\n", r.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [exp] markdown report written to %s\n", *mdOut)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched -run=%s (use -list)\n", *run)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "  [exp] suite finished in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
