package main

import (
	"encoding/json"
	"os"
	"testing"
)

// capture runs phastlint from the module root with stdout redirected to
// a temp file and returns the exit code plus everything written.
// Package patterns resolve against the working directory, so the test
// chdirs to the module root for the duration of the run.
func capture(t *testing.T, args ...string) (int, []byte) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "phastlint-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	code := run(args, out, os.Stderr)
	if err := os.Chdir(cwd); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, data
}

// TestJSONFindings pins the machine-readable contract CI archives: one
// object with findings (stable keys), a count, and exit status 1 when
// anything was found.
func TestJSONFindings(t *testing.T) {
	code, data := capture(t, "-json", "./internal/lint/testdata/lockhold")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (the fixture has findings)", code)
	}
	var rep struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int    `json:"count"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if rep.Count == 0 || len(rep.Findings) != rep.Count {
		t.Fatalf("count = %d with %d findings", rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Column == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
	if rep.Error != "" {
		t.Errorf("unexpected error key: %q", rep.Error)
	}
}

// TestJSONClean asserts a clean package yields findings: [] (not null —
// consumers iterate it) and exit 0.
func TestJSONClean(t *testing.T) {
	code, data := capture(t, "-json", "./internal/graph")
	if code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s", code, data)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if string(raw["findings"]) == "null" {
		t.Error("findings is null; must be an empty array")
	}
}

// TestJSONError asserts load/usage failures still produce a JSON object
// (CI uploads the artifact unconditionally) alongside exit status 2.
func TestJSONError(t *testing.T) {
	code, data := capture(t, "-json", "-analyzers", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	var rep struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if rep.Error == "" {
		t.Error("error key is empty on a failed run")
	}
}
