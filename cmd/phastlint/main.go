// Command phastlint runs the project-specific static analyzers of
// internal/lint over the module: rawalias (stored or reused-after-sweep
// raw buffer views), hotalloc (allocations inside //phast:hotpath
// kernels and in helpers reachable from them over the static call
// graph), indexwidth (lossy integer conversions in CSR indexing),
// engineshare (engines escaping to goroutines), atomicmix (fields
// accessed both through sync/atomic and plainly), epochpub (raw stores
// on published atomic.Pointer state), lockhold (mutexes held across
// blocking operations), and snapshotalias (writes through slices
// returned by //phast:readonly accessors, which view shared — possibly
// PROT_READ-mapped — snapshot memory). It is built from stdlib go/ast +
// go/types only and needs no network or external tools.
//
// Usage:
//
//	phastlint [flags] [packages]
//
//	phastlint ./...                  # whole module (the CI invocation)
//	phastlint ./internal/core
//	phastlint -analyzers rawalias,hotalloc ./...
//	phastlint -tests ./...           # include in-package _test.go files
//	phastlint -json ./...            # machine-readable diagnostics
//
// Diagnostics print as file:line:col: [analyzer] message. With -json
// they print instead as one JSON object {"findings": [...], "count": N}
// whose findings carry file, line, column, analyzer, and message —
// stable keys for CI artifacts and editor integrations. A finding can
// be suppressed — with a reason — by a comment on the same line or the
// line above:
//
//	//phastlint:ignore rawalias this test deliberately reads a stale raw view
//
// Exit status: 0 clean, 1 findings, 2 usage or load error (in -json
// mode load errors are also reported inside the JSON object's "error"
// key so CI artifacts capture them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"phast/internal/lint"
)

// jsonFinding is one diagnostic in -json output. The keys are part of
// the tool's interface: CI archives the output and the keys must stay
// stable across analyzer additions.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the single object -json mode prints.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
	Error    string        `json:"error,omitempty"`
}

func emitJSON(stdout *os.File, rep jsonReport) {
	if rep.Findings == nil {
		rep.Findings = []jsonFinding{} // [] not null: consumers iterate it
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("phastlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests     = fs.Bool("tests", false, "also lint in-package _test.go files")
		tags      = fs.String("tags", "", "comma-separated extra build tags (e.g. phastdebug)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		dir       = fs.String("C", ".", "directory inside the module to lint from")
		asJSON    = fs.Bool("json", false, "print diagnostics as one JSON object")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		if *asJSON {
			emitJSON(stdout, jsonReport{Error: err.Error()})
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	as, err := lint.ByName(*analyzers)
	if err != nil {
		return fail(err)
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		return fail(err)
	}
	loader.IncludeTests = *tests
	if *tags != "" {
		loader.BuildTags = splitComma(*tags)
	}
	dirs, err := loader.Expand(fs.Args())
	if err != nil {
		return fail(err)
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			return fail(err)
		}
		pkgs = append(pkgs, p)
	}
	diags := lint.Run(pkgs, as)
	if *asJSON {
		rep := jsonReport{Count: len(diags)}
		for _, d := range diags {
			rep.Findings = append(rep.Findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		emitJSON(stdout, rep)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "phastlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
