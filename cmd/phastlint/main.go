// Command phastlint runs the project-specific static analyzers of
// internal/lint over the module: rawalias (stored or reused-after-sweep
// raw buffer views), hotalloc (allocations inside //phast:hotpath
// kernels), indexwidth (lossy integer conversions in CSR indexing), and
// engineshare (engines escaping to goroutines). It is built from
// stdlib go/ast + go/types only and needs no network or external tools.
//
// Usage:
//
//	phastlint [flags] [packages]
//
//	phastlint ./...                  # whole module (the CI invocation)
//	phastlint ./internal/core
//	phastlint -analyzers rawalias,hotalloc ./...
//	phastlint -tests ./...           # include in-package _test.go files
//
// Diagnostics print as file:line:col: [analyzer] message. A finding can
// be suppressed — with a reason — by a comment on the same line or the
// line above:
//
//	//phastlint:ignore rawalias this test deliberately reads a stale raw view
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"phast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("phastlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests     = fs.Bool("tests", false, "also lint in-package _test.go files")
		tags      = fs.String("tags", "", "comma-separated extra build tags (e.g. phastdebug)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		dir       = fs.String("C", ".", "directory inside the module to lint from")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	as, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader.IncludeTests = *tests
	if *tags != "" {
		loader.BuildTags = splitComma(*tags)
	}
	dirs, err := loader.Expand(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, p)
	}
	diags := lint.Run(pkgs, as)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "phastlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
