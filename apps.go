package phast

import (
	"phast/internal/arcflags"
	"phast/internal/centrality"
	"phast/internal/ch"
	"phast/internal/core"
	"phast/internal/diameter"
	"phast/internal/partition"
)

// DiameterResult is a diameter estimate with a witness pair.
type DiameterResult = diameter.Result

// Diameter returns the longest shortest path found over trees from the
// given sources (Section VII-B.a). With sources covering all vertices
// the result is exact; nil means "all vertices".
func (e *Engine) Diameter(sources []int32) DiameterResult {
	if sources == nil {
		sources = allVertices(e.NumVertices())
	}
	return diameter.CPU(e.core.Clone(), sources)
}

// Reaches computes per-vertex reach values over trees from the given
// sources (Section VII-B.c); nil means "all vertices", which is exact
// when shortest paths are unique.
func (e *Engine) Reaches(sources []int32) []uint32 {
	if sources == nil {
		sources = allVertices(e.NumVertices())
	}
	return centrality.Reaches(e.g, e.core.Clone(), sources)
}

// Betweenness computes betweenness-centrality contributions of the given
// sources using PHAST trees; exact when shortest paths are unique
// (Section VII-B.c). nil means "all vertices".
func (e *Engine) Betweenness(sources []int32) []float64 {
	if sources == nil {
		sources = allVertices(e.NumVertices())
	}
	return centrality.BetweennessPHAST(e.g, e.core.Clone(), sources)
}

// BetweennessApprox estimates full betweenness from `samples` uniformly
// sampled pivot sources, scaling contributions by n/samples — the
// sampling acceleration Section VII-B.c points at. samples is clamped
// to [1, n]; with samples = n the estimate is exact (for unique
// shortest paths).
func (e *Engine) BetweennessApprox(samples int, seed int64) []float64 {
	return centrality.BetweennessApprox(e.g, e.core.Clone(), samples, seed)
}

// BetweennessExact computes betweenness with Brandes' algorithm over
// Dijkstra searches — exact even with non-unique shortest paths, but
// orders of magnitude slower on large networks. nil means all vertices.
func BetweennessExact(g *Graph, sources []int32) []float64 {
	if sources == nil {
		sources = allVertices(g.NumVertices())
	}
	return centrality.BetweennessDijkstra(g, sources)
}

// UniqueShortestPaths reports whether shortest paths from the given
// sources are unique — the exactness condition for Reaches/Betweenness.
// nil means "all vertices".
func UniqueShortestPaths(g *Graph, sources []int32) bool {
	if sources == nil {
		sources = allVertices(g.NumVertices())
	}
	return centrality.UniqueShortestPaths(g, sources)
}

func allVertices(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// ArcFlags is a preprocessed arc-flags index answering exact
// point-to-point queries with a flag-pruned Dijkstra (Section VII-B.b),
// unidirectional or bidirectional.
type ArcFlags struct {
	f       *arcflags.ArcFlags
	q       *arcflags.Query
	biq     *arcflags.BiQuery // nil unless built with Bidirectional
	chStats []BuildStats      // one entry per hierarchy preprocessed
}

// ArcFlagsOptions configures BuildArcFlags.
type ArcFlagsOptions struct {
	// Cells is the number of partition cells (default 16).
	Cells int
	// Seed drives the partitioner (default 1).
	Seed int64
	// UseDijkstra computes the boundary trees with plain Dijkstra instead
	// of PHAST — the slow baseline, kept for comparison.
	UseDijkstra bool
	// Bidirectional additionally computes backward flags on the
	// transpose, enabling the two-sided query of the paper ("can easily
	// be made bidirectional") at roughly double the preprocessing cost.
	Bidirectional bool
	// CHWorkers bounds preprocessing parallelism of the reverse
	// hierarchy (0 = GOMAXPROCS).
	CHWorkers int
}

// BuildArcFlags partitions g, builds one reverse shortest-path tree per
// boundary vertex (with PHAST unless UseDijkstra is set), and assembles
// the flags. opt may be nil.
func BuildArcFlags(g *Graph, opt *ArcFlagsOptions) (*ArcFlags, error) {
	if opt == nil {
		opt = &ArcFlagsOptions{}
	}
	k := opt.Cells
	if k == 0 {
		k = 16
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	cells, err := partition.Cells(g, k, seed)
	if err != nil {
		return nil, err
	}
	var reverseTree, forwardTree arcflags.ReverseTreeFunc
	var chStats []BuildStats
	if opt.UseDijkstra {
		reverseTree = arcflags.DijkstraReverseTrees(g)
		forwardTree = arcflags.DijkstraReverseTrees(g.Transpose())
	} else {
		var revStats BuildStats
		rev, err := arcflags.NewReverseEngine(g, ch.Options{Workers: opt.CHWorkers, Stats: &revStats}, core.Options{})
		if err != nil {
			return nil, err
		}
		chStats = append(chStats, revStats)
		reverseTree = arcflags.PHASTReverseTrees(rev)
		if opt.Bidirectional {
			var fwdStats BuildStats
			hFwd := ch.Build(g, ch.Options{Workers: opt.CHWorkers, Stats: &fwdStats})
			fwdEng, err := core.NewEngine(hFwd, core.Options{})
			if err != nil {
				return nil, err
			}
			chStats = append(chStats, fwdStats)
			forwardTree = arcflags.PHASTForwardTrees(fwdEng)
		}
	}
	if opt.Bidirectional {
		bi, err := arcflags.ComputeBidirectional(g, cells, k, reverseTree, forwardTree)
		if err != nil {
			return nil, err
		}
		return &ArcFlags{
			f:       bi.Forward(),
			q:       arcflags.NewQuery(bi.Forward()),
			biq:     arcflags.NewBiQuery(bi),
			chStats: chStats,
		}, nil
	}
	f, err := arcflags.Compute(g, cells, k, reverseTree)
	if err != nil {
		return nil, err
	}
	return &ArcFlags{f: f, q: arcflags.NewQuery(f), chStats: chStats}, nil
}

// PreprocessStats returns the CH preprocessing counters of the
// hierarchies built for this index: the reverse hierarchy first, then
// the forward one when the index is bidirectional. Empty when the index
// was built with UseDijkstra (no hierarchy was preprocessed).
func (a *ArcFlags) PreprocessStats() []BuildStats { return a.chStats }

// Query returns the exact s→t distance: a bidirectional flag-pruned
// search when the index was built with Bidirectional, the forward-only
// search otherwise.
func (a *ArcFlags) Query(s, t int32) uint32 {
	if a.biq != nil {
		return a.biq.Distance(s, t)
	}
	return a.q.Distance(s, t)
}

// Scanned returns the number of vertices the last Query scanned.
func (a *ArcFlags) Scanned() int {
	if a.biq != nil {
		return a.biq.Scanned()
	}
	return a.q.Scanned()
}

// Cell returns the partition cell of vertex v.
func (a *ArcFlags) Cell(v int32) int32 { return a.f.Cell(v) }

// NumBoundary returns the number of boundary vertices preprocessed.
func (a *ArcFlags) NumBoundary() int { return a.f.NumBoundary }

// FlagDensity returns the fraction of set (arc, cell) flags.
func (a *ArcFlags) FlagDensity() float64 { return a.f.FlagDensity() }
